package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/bench"
	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/journal"
)

// SweepRequest is the JSON body of POST /v1/sweep: which benchmarks to
// sweep and under what budgets. Everything is optional; the zero request
// sweeps every registered benchmark at the small size with no budgets.
// Fields that change simulation results (benchmarks, size, budgets, fault
// plan, stall) are part of the request fingerprint; fields that only
// change scheduling (jobs) or request lifetime (deadline) are not, so
// the same experiment always maps to the same cache entry and journal.
type SweepRequest struct {
	// Benchmarks restricts the sweep to these full names ("suite/name");
	// empty sweeps every registered benchmark.
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Size is "small" (default) or "medium".
	Size string `json:"size,omitempty"`
	// MaxEvents is the per-run simulation event budget (0 = unlimited).
	MaxEvents uint64 `json:"max_events,omitempty"`
	// TimeoutMs is the per-run wall-clock budget in ms (0 = unlimited).
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// StallMs arms the per-run stall watchdog: a run whose simulated
	// clock freezes this long while events churn is killed (0 = off).
	StallMs int64 `json:"stall_ms,omitempty"`
	// Fault injects hardware degradations into every run, in the -inject
	// syntax, e.g. "pcie=0.25,fault=8,dram=0:100:600".
	Fault string `json:"fault,omitempty"`
	// DeadlineMs bounds the whole request in wall-clock ms; past it,
	// in-flight runs are canceled and the request fails with a deadline
	// error (0 = no deadline beyond the client's own patience).
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
	// Jobs is how many simulations of this request may run concurrently
	// (its admission weight). 0 and 1 mean serial; values above the
	// server's pool size are clamped to it.
	Jobs int `json:"jobs,omitempty"`
	// Parallel is each run's intra-run simulation worker count
	// (harness.Spec.Parallel). 0 and 1 simulate serially; higher values
	// pipeline trace generation inside every run. Results are
	// byte-identical for every value, so — like jobs — it is excluded
	// from the fingerprint.
	Parallel int `json:"parallel,omitempty"`
	// BackoffMs and Jitter space retry attempts (see harness.Spec);
	// timing-only, so they are excluded from the fingerprint.
	BackoffMs int64   `json:"backoff_ms,omitempty"`
	Jitter    float64 `json:"jitter,omitempty"`
}

// RunRequest is the JSON body of POST /v1/run: one benchmark, one mode.
type RunRequest struct {
	// Benchmark is the full "suite/name" to run. Required.
	Benchmark string `json:"benchmark"`
	// Mode is "copy" (default), "limited-copy", "async-streams", or
	// "parallel-chunked".
	Mode string `json:"mode,omitempty"`
	// The remaining knobs mirror SweepRequest.
	Size       string  `json:"size,omitempty"`
	MaxEvents  uint64  `json:"max_events,omitempty"`
	TimeoutMs  int64   `json:"timeout_ms,omitempty"`
	StallMs    int64   `json:"stall_ms,omitempty"`
	Fault      string  `json:"fault,omitempty"`
	DeadlineMs int64   `json:"deadline_ms,omitempty"`
	Parallel   int     `json:"parallel,omitempty"`
	BackoffMs  int64   `json:"backoff_ms,omitempty"`
	Jitter     float64 `json:"jitter,omitempty"`
}

// badRequestError is a request-validation failure: the client's fault,
// mapped to HTTP 400 with the message as the diagnostic.
type badRequestError struct{ msg string }

func (e *badRequestError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &badRequestError{msg: fmt.Sprintf(format, args...)}
}

// decodeJSON decodes one JSON document from an HTTP body, strictly: a
// size cap against oversized bodies, unknown fields rejected (a typo'd
// knob silently ignored would run the wrong experiment), and trailing
// garbage rejected.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	const maxBody = 1 << 20 // requests are small config documents
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return badRequest("bad request body: %v", err)
	}
	if dec.More() {
		return badRequest("bad request body: trailing data after the JSON document")
	}
	// Drain whatever the limiter allows so keep-alive connections reuse.
	io.Copy(io.Discard, dec.Buffered())
	return nil
}

// parseSize maps the wire size name to the bench preset.
func parseSize(s string) (bench.Size, error) {
	switch s {
	case "", "small":
		return bench.SizeSmall, nil
	case "medium":
		return bench.SizeMedium, nil
	}
	return 0, badRequest("unknown size %q (want small or medium)", s)
}

// parseMode maps the wire mode name to the bench mode ("" = copy).
func parseMode(s string) (bench.Mode, error) {
	if s == "" {
		return bench.ModeCopy, nil
	}
	m, err := bench.ParseMode(s)
	if err != nil {
		return 0, badRequest("%v", err)
	}
	return m, nil
}

// validateFault parses an untrusted fault-plan string and proves the
// resulting degraded configurations are still self-consistent by running
// them through config.Validate — the request is rejected up front rather
// than poisoning a simulation (or a cache entry) with NaN-flavored
// hardware.
func validateFault(plan string) (*harness.FaultPlan, error) {
	fault, err := harness.ParseFaultPlan(plan)
	if err != nil {
		return nil, badRequest("fault: %v", err)
	}
	for _, sys := range []config.System{config.DiscreteGPU(), config.HeteroProcessor()} {
		fault.Apply(&sys)
		if err := sys.Validate(); err != nil {
			return nil, badRequest("fault plan %q yields an invalid %s system: %v", plan, sys.Kind, err)
		}
	}
	return fault, nil
}

// nonNegativeMs converts a request's millisecond field to a duration.
func nonNegativeMs(name string, ms int64) (time.Duration, error) {
	if ms < 0 {
		return 0, badRequest("%s must be >= 0, got %d", name, ms)
	}
	return time.Duration(ms) * time.Millisecond, nil
}

// sweepParams is a validated SweepRequest, resolved to engine types.
type sweepParams struct {
	size        bench.Size
	opts        experiments.SweepOpts
	deadline    time.Duration
	jobs        int // requested concurrency = admission weight
	fingerprint string
}

// resolveSweep validates a SweepRequest against the registry and the
// config layer and resolves it to sweep options plus its fingerprint.
// maxJobs is the server's pool size (the clamp for jobs).
func resolveSweep(req *SweepRequest, maxJobs int) (*sweepParams, error) {
	p := &sweepParams{}
	var err error
	if p.size, err = parseSize(req.Size); err != nil {
		return nil, err
	}
	for _, name := range req.Benchmarks {
		if _, ok := bench.Get(name); !ok {
			return nil, badRequest("unknown benchmark %q", name)
		}
	}
	fault, err := validateFault(req.Fault)
	if err != nil {
		return nil, err
	}
	timeout, err := nonNegativeMs("timeout_ms", req.TimeoutMs)
	if err != nil {
		return nil, err
	}
	stall, err := nonNegativeMs("stall_ms", req.StallMs)
	if err != nil {
		return nil, err
	}
	if p.deadline, err = nonNegativeMs("deadline_ms", req.DeadlineMs); err != nil {
		return nil, err
	}
	backoff, err := nonNegativeMs("backoff_ms", req.BackoffMs)
	if err != nil {
		return nil, err
	}
	if req.Jitter < 0 || req.Jitter > 1 {
		return nil, badRequest("jitter must be in [0,1], got %v", req.Jitter)
	}
	if req.Jobs < 0 {
		return nil, badRequest("jobs must be >= 0, got %d", req.Jobs)
	}
	if req.Parallel < 0 {
		return nil, badRequest("parallel must be >= 0, got %d", req.Parallel)
	}
	p.jobs = req.Jobs
	if p.jobs < 1 {
		p.jobs = 1
	}
	if p.jobs > maxJobs {
		p.jobs = maxJobs
	}
	p.opts = experiments.SweepOpts{
		Budget:   harness.Budget{MaxEvents: req.MaxEvents, Timeout: timeout},
		Fault:    fault,
		Jobs:     p.jobs,
		Parallel: req.Parallel,
		Stall:    stall,
	}
	// An explicitly empty benchmark list means the same as an omitted
	// one: sweep everything. (A non-nil empty Only would match nothing.)
	if len(req.Benchmarks) > 0 {
		p.opts.Only = req.Benchmarks
	}
	if backoff > 0 {
		p.opts.PerRun = func(spec *harness.Spec) {
			spec.Backoff = backoff
			spec.Jitter = req.Jitter
		}
	}
	// The fingerprint covers exactly what determines results; jobs,
	// deadline, and retry spacing are excluded by the same rule the CLI
	// sweeps use for -jobs (results are identical for every value).
	p.fingerprint = experiments.SweepFingerprint(p.size, p.opts)
	return p, nil
}

// runParams is a validated RunRequest.
type runParams struct {
	spec        harness.Spec
	deadline    time.Duration
	fingerprint string
}

// resolveRun validates a RunRequest and resolves it to a harness spec
// plus its fingerprint.
func resolveRun(req *RunRequest) (*runParams, error) {
	if req.Benchmark == "" {
		return nil, badRequest("benchmark is required")
	}
	b, ok := bench.Get(req.Benchmark)
	if !ok {
		return nil, badRequest("unknown benchmark %q", req.Benchmark)
	}
	mode, err := parseMode(req.Mode)
	if err != nil {
		return nil, err
	}
	if !b.Info().Supports(mode) {
		return nil, badRequest("benchmark %q does not support mode %s", req.Benchmark, mode)
	}
	size, err := parseSize(req.Size)
	if err != nil {
		return nil, err
	}
	fault, err := validateFault(req.Fault)
	if err != nil {
		return nil, err
	}
	timeout, err := nonNegativeMs("timeout_ms", req.TimeoutMs)
	if err != nil {
		return nil, err
	}
	stall, err := nonNegativeMs("stall_ms", req.StallMs)
	if err != nil {
		return nil, err
	}
	deadline, err := nonNegativeMs("deadline_ms", req.DeadlineMs)
	if err != nil {
		return nil, err
	}
	backoff, err := nonNegativeMs("backoff_ms", req.BackoffMs)
	if err != nil {
		return nil, err
	}
	if req.Jitter < 0 || req.Jitter > 1 {
		return nil, badRequest("jitter must be in [0,1], got %v", req.Jitter)
	}
	if req.Parallel < 0 {
		return nil, badRequest("parallel must be >= 0, got %d", req.Parallel)
	}
	p := &runParams{
		spec: harness.Spec{
			Bench: b, Mode: mode, Size: size,
			Budget:   harness.Budget{MaxEvents: req.MaxEvents, Timeout: timeout},
			Fault:    fault,
			Stall:    stall,
			Parallel: req.Parallel,
			Backoff:  backoff,
			Jitter:   req.Jitter,
		},
		deadline: deadline,
	}
	p.fingerprint = runFingerprint(req.Benchmark, mode, size, fault, p.spec.Budget, stall)
	return p, nil
}

// runFingerprint hashes everything that determines a single run's result,
// mirroring the sweep fingerprint's exclusion of timing-only knobs.
func runFingerprint(benchName string, mode bench.Mode, size bench.Size,
	fault *harness.FaultPlan, budget harness.Budget, stall time.Duration) string {
	var fp journal.Fingerprint
	fp.Add("version", strconv.Itoa(journal.Version))
	fp.Add("kind", "run")
	fp.Add("discrete", fmt.Sprintf("%+v", config.DiscreteGPU()))
	fp.Add("hetero", fmt.Sprintf("%+v", config.HeteroProcessor()))
	fp.Add("bench", benchName)
	fp.Add("mode", mode.String())
	fp.Add("size", size.String())
	fp.Add("fault", fault.String())
	fp.Add("max_events", strconv.FormatUint(budget.MaxEvents, 10))
	fp.Add("timeout", budget.Timeout.String())
	fp.Add("stall", stall.String())
	return fp.Sum()
}
