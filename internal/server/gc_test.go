package server

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

// fp64 fabricates a distinct fingerprint-shaped (64 hex chars) cache key.
func fp64(seed byte) string {
	return strings.Repeat(fmt.Sprintf("%02x", seed), 32)
}

// corruptFile flips one byte near the end of a file in place.
func corruptFile(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0x20
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestQuarantineUniqueSuffixCache: corrupting the same cache key twice
// must preserve both specimens — the second quarantine picks .corrupt.1
// instead of clobbering .corrupt.
func TestQuarantineUniqueSuffixCache(t *testing.T) {
	c, err := NewCache(t.TempDir(), t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	key := fp64(0xaa)
	first := []byte("first body\n")
	if err := c.Put(key, first); err != nil {
		t.Fatal(err)
	}
	corruptFile(t, c.path(key))
	if _, ok := c.Get(key); ok {
		t.Fatal("corrupt entry served")
	}
	if _, err := os.Stat(c.path(key) + ".corrupt"); err != nil {
		t.Fatalf("first quarantine missing: %v", err)
	}

	if err := c.Put(key, []byte("second body\n")); err != nil {
		t.Fatal(err)
	}
	corruptFile(t, c.path(key))
	if _, ok := c.Get(key); ok {
		t.Fatal("corrupt entry served")
	}
	if _, err := os.Stat(c.path(key) + ".corrupt.1"); err != nil {
		t.Fatalf("second quarantine did not get a unique suffix: %v", err)
	}
	// The first specimen survived the second quarantine.
	data, err := os.ReadFile(c.path(key) + ".corrupt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte("first")) {
		t.Fatalf("first quarantine was clobbered; contents: %q", data)
	}
}

// TestQuotaLRUOrderAcrossRestart: the eviction order is least recently
// *accessed* first, and survives a cache reopen through the index
// sidecar — no filesystem atimes involved.
func TestQuotaLRUOrderAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	a, b, z := fp64(0x0a), fp64(0x0b), fp64(0x0c)
	for _, k := range []string{a, b, z} {
		if err := c.Put(k, []byte("body of "+k+"\n")); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := c.Get(a); !ok { // a becomes most recent
		t.Fatal("get a")
	}
	c.SaveIndex()

	// Restart: a fresh Cache over the same dir must reconstruct the order.
	c2, err := NewCache(dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	order := c2.LRU()
	if len(order) != 3 {
		t.Fatalf("LRU has %d entries, want 3", len(order))
	}
	if order[0].key != b || order[1].key != z || order[2].key != a {
		t.Fatalf("LRU order = [%s %s %s], want [b c a] = [%s %s %s]",
			short(order[0].key), short(order[1].key), short(order[2].key), short(b), short(z), short(a))
	}
}

// TestQuotaEvictionLRU: enforceQuota evicts oldest-accessed entries until
// the state dir fits the byte budget, counts them, and leaves recently
// used entries alone.
func TestQuotaEvictionLRU(t *testing.T) {
	reg := metrics.NewRegistry()
	body := bytes.Repeat([]byte("x"), 1000)
	var quota int64 = 2400 // fits two ~1030-byte entries (plus the index sidecar), not three
	s, _ := newTestServer(t, func(c *Config) {
		c.Metrics = reg
		c.StateQuota = quota
		c.GCInterval = -1
	})
	k1, k2, k3 := fp64(0x01), fp64(0x02), fp64(0x03)
	for _, k := range []string{k1, k2, k3} {
		if err := s.cache.Put(k, body); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.cache.Get(k1); !ok { // k1 most recent; k2 is now LRU
		t.Fatal("get k1")
	}

	s.enforceQuota()

	if s.stateUsage() > quota {
		t.Fatalf("state dir is %d bytes after GC, quota is %d", s.stateUsage(), quota)
	}
	if s.cache.Has(k2) {
		t.Fatal("LRU entry k2 survived eviction")
	}
	if !s.cache.Has(k1) || !s.cache.Has(k3) {
		t.Fatal("eviction removed more than the LRU entry")
	}
	snap := reg.Snapshot()
	if got := snap[`hetsimd_evicted_total{kind="entry"}`]; got != 1 {
		t.Fatalf("evicted_total = %v, want 1", got)
	}
	if got := snap["hetsimd_state_bytes"]; got <= 0 || int64(got) > quota {
		t.Fatalf("state_bytes gauge = %v, want in (0, %d]", got, quota)
	}

	// The evicted fingerprint simply recomputes: a fresh Put works and a
	// Get verifies it.
	if err := s.cache.Put(k2, body); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.cache.Get(k2); !ok || !bytes.Equal(got, body) {
		t.Fatal("evicted fingerprint did not recompute cleanly")
	}
}

// TestGCStartupTmpOrphan: a temp file left by a crashed Put is removed by
// the startup sweep and counted under kind="tmp".
func TestGCStartupTmpOrphan(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(cacheDir, fp64(0x11)+".tmp-4242")
	if err := os.WriteFile(orphan, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	newTestServer(t, func(c *Config) {
		c.StateDir = dir
		c.Metrics = reg
		c.GCInterval = -1
	})
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphaned temp file survived startup GC (stat err=%v)", err)
	}
	if got := reg.Snapshot()[`hetsimd_gc_removed_total{kind="tmp"}`]; got != 1 {
		t.Fatalf(`gc_removed_total{kind="tmp"} = %v, want 1`, got)
	}
}

// TestGCAgedCorrupt: quarantined files older than CorruptAge are
// reclaimed; younger ones are kept for post-mortem.
func TestGCAgedCorrupt(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		t.Fatal(err)
	}
	old := filepath.Join(cacheDir, fp64(0x21)+".entry.corrupt")
	fresh := filepath.Join(cacheDir, fp64(0x22)+".entry.corrupt")
	for _, p := range []string{old, fresh} {
		if err := os.WriteFile(p, []byte("damaged"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	stale := time.Now().Add(-48 * time.Hour)
	if err := os.Chtimes(old, stale, stale); err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	newTestServer(t, func(c *Config) {
		c.StateDir = dir
		c.Metrics = reg
		c.GCInterval = -1 // CorruptAge defaults to 24h
	})
	if _, err := os.Stat(old); !os.IsNotExist(err) {
		t.Fatalf("48h-old quarantine survived GC (stat err=%v)", err)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatalf("fresh quarantine was reclaimed early: %v", err)
	}
	if got := reg.Snapshot()[`hetsimd_gc_removed_total{kind="corrupt"}`]; got != 1 {
		t.Fatalf(`gc_removed_total{kind="corrupt"} = %v, want 1`, got)
	}
}

// TestGCSubsumedJournal: a journal whose fingerprint already has a cache
// entry is dead weight (a crash between cache write and journal removal)
// and is reclaimed; journals for uncached fingerprints are checkpoint
// state and must survive.
func TestGCSubsumedJournal(t *testing.T) {
	reg := metrics.NewRegistry()
	s, _ := newTestServer(t, func(c *Config) {
		c.Metrics = reg
		c.GCInterval = -1
	})
	cached, uncached := fp64(0x31), fp64(0x32)
	if err := s.cache.Put(cached, []byte("result\n")); err != nil {
		t.Fatal(err)
	}
	subsumed := filepath.Join(s.journalDir, cached+"-req1.journal")
	live := filepath.Join(s.journalDir, uncached+"-req2.journal")
	for _, p := range []string{subsumed, live} {
		if err := os.WriteFile(p, []byte("journal bytes\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s.runGC(false)

	if _, err := os.Stat(subsumed); !os.IsNotExist(err) {
		t.Fatalf("subsumed journal survived GC (stat err=%v)", err)
	}
	if _, err := os.Stat(live); err != nil {
		t.Fatalf("live journal was reclaimed: %v", err)
	}
	if got := reg.Snapshot()[`hetsimd_gc_removed_total{kind="journal"}`]; got != 1 {
		t.Fatalf(`gc_removed_total{kind="journal"} = %v, want 1`, got)
	}
}
