package server

import (
	"fmt"
	"net"
	"net/url"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/metrics"
)

// TestSlowClientStreamDropped: a client that opens a progress stream and
// never reads it must not park a pool worker forever on a full socket
// buffer. The per-write deadline trips, the connection is dropped, the
// request is canceled (so the simulation work stops), and the drop is
// counted under hetsimd_rejected_total{reason="slow_client"}.
func TestSlowClientStreamDropped(t *testing.T) {
	reg := metrics.NewRegistry()
	s, ts := newTestServer(t, func(c *Config) {
		c.Metrics = reg
		c.StreamWriteTimeout = 150 * time.Millisecond
		c.GCInterval = -1
	})
	done := make(chan struct{})
	s.runSweep = func(size bench.Size, opts experiments.SweepOpts) (*experiments.Results, []harness.RunError) {
		defer close(done)
		// Pump progress frames until the slow-client guard cancels the
		// request. Each frame lands in the never-drained socket buffer;
		// once it fills, the write blocks and the deadline fires.
		for i := 0; opts.Ctx.Err() == nil; i++ {
			opts.Progress.Start(fmt.Sprintf("run-%d", i))
		}
		return stubSweepResults(size), nil
	}

	u, err := url.Parse(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", u.Host)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	body := `{}`
	fmt.Fprintf(conn, "POST /v1/sweep?stream=ndjson HTTP/1.1\r\nHost: %s\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s",
		u.Host, len(body), body)
	// Deliberately never read the response.

	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("sweep was never canceled; the stalled stream parked the worker")
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if reg.Snapshot()[`hetsimd_rejected_total{reason="slow_client"}`] >= 1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf(`rejected_total{reason="slow_client"} = %v, want >= 1`,
		reg.Snapshot()[`hetsimd_rejected_total{reason="slow_client"}`])
}
