package server

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"repro/internal/journal"
)

// Cache is the daemon's content-addressed result store: completed
// responses keyed by request fingerprint, so a repeated request is a disk
// read instead of a re-simulation. Entries are written atomically (temp
// file, fsync, rename, directory fsync) and verified on every read by a
// CRC32-Castagnoli checksum over the body. A corrupt entry — bit rot, a
// torn write that survived, an operator's stray edit — is quarantined:
// renamed aside with a ".corrupt" suffix and logged, and the caller
// recomputes. The cache never refuses service over a bad entry; it is an
// accelerator, and the journal underneath it remains the durable store of
// record for in-progress work.
//
// The entry format is a one-line header followed by the raw body bytes:
//
//	hetsimd-cache 1 <crc32c %08x> <body length>\n<body>
//
// Serving the exact stored bytes (not a re-marshal) is what makes a cache
// hit byte-identical to the miss that populated it.
type Cache struct {
	dir  string
	logf func(format string, args ...any)
	mu   sync.Mutex // serializes quarantine renames for the same key
	// onQuarantine, when set, observes each corrupt-entry quarantine (the
	// server wires a metrics counter here).
	onQuarantine func()
}

// cacheMagic stamps entry headers; a version bump invalidates old entries
// (they quarantine and recompute — the safe failure mode).
const cacheMagic = "hetsimd-cache 1"

// NewCache opens (creating if needed) a cache rooted at dir. logf
// receives quarantine and write-failure diagnostics (nil discards them).
func NewCache(dir string, logf func(format string, args ...any)) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache dir: %w", err)
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Cache{dir: dir, logf: logf}, nil
}

// path maps a key (a hex fingerprint — already filesystem-safe) to its
// entry file.
func (c *Cache) path(key string) string { return filepath.Join(c.dir, key+".entry") }

// Get returns the verified body for key, or (nil, false) on a miss. A
// present-but-corrupt entry is quarantined (renamed to <key>.corrupt,
// replacing any earlier quarantine) and reported as a miss, so the caller
// recomputes and overwrites it with a good entry.
func (c *Cache) Get(key string) ([]byte, bool) {
	path := c.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			c.logf("cache: read %s: %v", path, err)
		}
		return nil, false
	}
	body, err := parseEntry(data)
	if err != nil {
		c.quarantine(path, err)
		return nil, false
	}
	return body, true
}

// parseEntry validates one entry file and returns its body.
func parseEntry(data []byte) ([]byte, error) {
	nl := strings.IndexByte(string(data[:min(len(data), 64)]), '\n')
	if nl < 0 {
		return nil, fmt.Errorf("no header line")
	}
	fields := strings.Fields(string(data[:nl]))
	if len(fields) != 4 || fields[0]+" "+fields[1] != cacheMagic {
		return nil, fmt.Errorf("bad header %q", string(data[:nl]))
	}
	wantCRC, err := strconv.ParseUint(fields[2], 16, 32)
	if err != nil {
		return nil, fmt.Errorf("bad checksum field: %v", err)
	}
	wantLen, err := strconv.Atoi(fields[3])
	if err != nil || wantLen < 0 {
		return nil, fmt.Errorf("bad length field %q", fields[3])
	}
	body := data[nl+1:]
	if len(body) != wantLen {
		return nil, fmt.Errorf("body is %d bytes, header says %d", len(body), wantLen)
	}
	if got := crc32.Checksum(body, crc32.MakeTable(crc32.Castagnoli)); got != uint32(wantCRC) {
		return nil, fmt.Errorf("checksum mismatch (want %08x, got %08x)", wantCRC, got)
	}
	return body, nil
}

// quarantine renames a damaged entry aside and logs it. Renaming (rather
// than deleting) preserves the evidence for post-mortem; renaming (rather
// than refusing) lets the caller recompute and move on.
func (c *Cache) quarantine(path string, cause error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.onQuarantine != nil {
		c.onQuarantine()
	}
	q := path + ".corrupt"
	if err := os.Rename(path, q); err != nil {
		c.logf("cache: quarantine %s: %v (entry was corrupt: %v)", path, err, cause)
		return
	}
	// Make the rename durable so a crash cannot resurrect the corrupt
	// entry under its serving name.
	if err := journal.SyncDir(c.dir); err != nil {
		c.logf("cache: quarantine %s: %v", path, err)
	}
	c.logf("cache: quarantined corrupt entry %s -> %s: %v", path, q, cause)
}

// Put durably stores body under key: temp file in the same directory,
// contents fsync'd, atomic rename over any existing entry, directory
// fsync. Readers racing a Put see either the old complete entry or the
// new one, never a torn hybrid.
func (c *Cache) Put(key string, body []byte) error {
	path := c.path(key)
	header := fmt.Sprintf("%s %08x %d\n", cacheMagic,
		crc32.Checksum(body, crc32.MakeTable(crc32.Castagnoli)), len(body))
	tmp, err := os.CreateTemp(c.dir, key+".tmp-*")
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.WriteString(header); err == nil {
		_, err = tmp.Write(body)
		if err == nil {
			err = tmp.Sync()
		}
	} else {
		tmp.Close()
		return fmt.Errorf("cache: write: %w", err)
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("cache: write: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	if err := journal.SyncDir(c.dir); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	return nil
}

// Len counts stored (non-quarantined) entries, for the health endpoint.
func (c *Cache) Len() int {
	ents, err := os.ReadDir(c.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".entry") {
			n++
		}
	}
	return n
}
