package server

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/fsx"
	"repro/internal/journal"
)

// Cache is the daemon's content-addressed result store: completed
// responses keyed by request fingerprint, so a repeated request is a disk
// read instead of a re-simulation. Entries are written atomically (temp
// file, fsync, rename, directory fsync) and verified on every read by a
// CRC32-Castagnoli checksum over the body. A corrupt entry — bit rot, a
// torn write that survived, an operator's stray edit — is quarantined:
// renamed aside with a unique ".corrupt" suffix and logged, and the
// caller recomputes. The cache never refuses service over a bad entry; it
// is an accelerator, and the journal underneath it remains the durable
// store of record for in-progress work.
//
// The entry format is a one-line header followed by the raw body bytes:
//
//	hetsimd-cache 1 <crc32c %08x> <body length>\n<body>
//
// Serving the exact stored bytes (not a re-marshal) is what makes a cache
// hit byte-identical to the miss that populated it.
//
// The cache also keeps an in-memory recency index — entry sizes plus a
// logical access clock bumped on every hit — so the state-dir garbage
// collector can evict least-recently-used entries under a byte quota
// without trusting filesystem atimes (noatime mounts are the production
// norm). The index persists across restarts through a best-effort sidecar
// file (index.lru): losing it costs only eviction ordering, never
// correctness, so it is written without fsync and rebuilt from the
// directory listing when absent.
type Cache struct {
	dir  string
	fs   fsx.FS
	logf func(format string, args ...any)

	mu      sync.Mutex // guards index, tmps, quarantine renames
	seq     uint64     // logical access clock
	entries map[string]*entryMeta
	tmps    map[string]bool // in-flight temp basenames (GC must not reap)

	// onQuarantine, when set, observes each corrupt-entry quarantine (the
	// server wires a metrics counter here).
	onQuarantine func()
}

// entryMeta is one entry's recency-index row.
type entryMeta struct {
	size int64  // file size (header + body)
	last uint64 // access clock at last Get/Put (0 = not seen since load)
}

// cacheMagic stamps entry headers; a version bump invalidates old entries
// (they quarantine and recompute — the safe failure mode).
const cacheMagic = "hetsimd-cache 1"

// indexFile is the recency sidecar's name inside the cache dir.
const indexFile = "index.lru"

// NewCache opens (creating if needed) a cache rooted at dir. logf
// receives quarantine and write-failure diagnostics (nil discards them).
func NewCache(dir string, logf func(format string, args ...any)) (*Cache, error) {
	return NewCacheFS(fsx.OS, dir, logf)
}

// NewCacheFS is NewCache over an injectable filesystem.
func NewCacheFS(fsys fsx.FS, dir string, logf func(format string, args ...any)) (*Cache, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache dir: %w", err)
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	c := &Cache{dir: dir, fs: fsys, logf: logf,
		entries: map[string]*entryMeta{}, tmps: map[string]bool{}}
	c.loadIndex()
	return c, nil
}

// loadIndex rebuilds the recency index: entry names and sizes from the
// directory listing (the ground truth), access order from the sidecar
// when one survives. Entries missing from the sidecar sort oldest.
func (c *Cache) loadIndex() {
	ents, err := c.fs.ReadDir(c.dir)
	if err != nil {
		c.logf("cache: index scan: %v", err)
		return
	}
	for _, e := range ents {
		name := e.Name()
		if !strings.HasSuffix(name, ".entry") || e.IsDir() {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		c.entries[strings.TrimSuffix(name, ".entry")] = &entryMeta{size: info.Size()}
	}
	data, err := c.fs.ReadFile(filepath.Join(c.dir, indexFile))
	if err != nil {
		return // no sidecar: everything ties at last=0
	}
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	for sc.Scan() {
		var last uint64
		var key string
		if _, err := fmt.Sscanf(sc.Text(), "%d %s", &last, &key); err != nil {
			continue
		}
		if m, ok := c.entries[key]; ok {
			m.last = last
			if last > c.seq {
				c.seq = last
			}
		}
	}
}

// SaveIndex persists the recency sidecar (temp + rename, no fsync: the
// index is an eviction-ordering hint, not durable state). Best effort —
// failures are logged and swallowed.
func (c *Cache) SaveIndex() {
	c.mu.Lock()
	keys := make([]string, 0, len(c.entries))
	for k := range c.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%d %s\n", c.entries[k].last, k)
	}
	c.mu.Unlock()

	tmp, err := c.fs.CreateTemp(c.dir, indexFile+".tmp-*")
	if err != nil {
		c.logf("cache: save index: %v", err)
		return
	}
	c.trackTmp(filepath.Base(tmp.Name()), true)
	defer c.trackTmp(filepath.Base(tmp.Name()), false)
	_, werr := tmp.Write([]byte(b.String()))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		c.fs.Remove(tmp.Name())
		c.logf("cache: save index: write=%v close=%v", werr, cerr)
		return
	}
	if err := c.fs.Rename(tmp.Name(), filepath.Join(c.dir, indexFile)); err != nil {
		c.fs.Remove(tmp.Name())
		c.logf("cache: save index: %v", err)
	}
}

// trackTmp marks (or unmarks) an in-flight temp basename so the GC's
// orphan sweep never reaps a temp file mid-write.
func (c *Cache) trackTmp(base string, inFlight bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if inFlight {
		c.tmps[base] = true
	} else {
		delete(c.tmps, base)
	}
}

// TmpInFlight reports whether base is a temp file some Put is writing
// right now (the GC's guard).
func (c *Cache) TmpInFlight(base string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tmps[base]
}

// path maps a key (a hex fingerprint — already filesystem-safe) to its
// entry file.
func (c *Cache) path(key string) string { return filepath.Join(c.dir, key+".entry") }

// touch bumps key's recency clock (and creates its row after a Put).
func (c *Cache) touch(key string, size int64, haveSize bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.entries[key]
	if !ok {
		m = &entryMeta{}
		c.entries[key] = m
	}
	if haveSize {
		m.size = size
	}
	c.seq++
	m.last = c.seq
}

// forget drops key's index row (after a quarantine or eviction).
func (c *Cache) forget(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.entries, key)
}

// Get returns the verified body for key, or (nil, false) on a miss. A
// present-but-corrupt entry is quarantined (renamed to a unique
// <key>.entry.corrupt[.N] name, never clobbering an earlier quarantine)
// and reported as a miss, so the caller recomputes and overwrites it with
// a good entry.
func (c *Cache) Get(key string) ([]byte, bool) {
	path := c.path(key)
	data, err := c.fs.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			c.logf("cache: read %s: %v", path, err)
		}
		return nil, false
	}
	body, err := parseEntry(data)
	if err != nil {
		c.quarantine(key, path, err)
		return nil, false
	}
	c.touch(key, int64(len(data)), true)
	return body, true
}

// Has reports whether key has a stored (non-quarantined) entry, without
// reading or verifying it — the GC's cheap "is this journal subsumed?"
// check.
func (c *Cache) Has(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// parseEntry validates one entry file and returns its body.
func parseEntry(data []byte) ([]byte, error) {
	nl := strings.IndexByte(string(data[:min(len(data), 64)]), '\n')
	if nl < 0 {
		return nil, fmt.Errorf("no header line")
	}
	fields := strings.Fields(string(data[:nl]))
	if len(fields) != 4 || fields[0]+" "+fields[1] != cacheMagic {
		return nil, fmt.Errorf("bad header %q", string(data[:nl]))
	}
	wantCRC, err := strconv.ParseUint(fields[2], 16, 32)
	if err != nil {
		return nil, fmt.Errorf("bad checksum field: %v", err)
	}
	wantLen, err := strconv.Atoi(fields[3])
	if err != nil || wantLen < 0 {
		return nil, fmt.Errorf("bad length field %q", fields[3])
	}
	body := data[nl+1:]
	if len(body) != wantLen {
		return nil, fmt.Errorf("body is %d bytes, header says %d", len(body), wantLen)
	}
	if got := crc32.Checksum(body, crc32.MakeTable(crc32.Castagnoli)); got != uint32(wantCRC) {
		return nil, fmt.Errorf("checksum mismatch (want %08x, got %08x)", wantCRC, got)
	}
	return body, nil
}

// uniqueQuarantinePath picks the first unused <path>.corrupt[.N] name, so
// quarantining a second damaged artifact under the same name preserves
// the first instead of silently clobbering the evidence. Shared by the
// cache and the server's journal quarantine path.
func uniqueQuarantinePath(fsys fsx.FS, path string) string {
	base := path + ".corrupt"
	q := base
	for i := 1; i < 10000; i++ {
		if _, err := fsys.Stat(q); err != nil {
			return q
		}
		q = fmt.Sprintf("%s.%d", base, i)
	}
	return q
}

// quarantine renames a damaged entry aside and logs it. Renaming (rather
// than deleting) preserves the evidence for post-mortem; renaming (rather
// than refusing) lets the caller recompute and move on. The destination
// name is unique, so repeated corruption of one key keeps every specimen.
func (c *Cache) quarantine(key, path string, cause error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.onQuarantine != nil {
		c.onQuarantine()
	}
	delete(c.entries, key)
	q := uniqueQuarantinePath(c.fs, path)
	if err := c.fs.Rename(path, q); err != nil {
		c.logf("cache: quarantine %s: %v (entry was corrupt: %v)", path, err, cause)
		return
	}
	now := time.Now()
	c.fs.Chtimes(q, now, now) // GC ages quarantines from quarantine time
	// Make the rename durable so a crash cannot resurrect the corrupt
	// entry under its serving name.
	if err := c.fs.SyncDir(c.dir); err != nil {
		c.logf("cache: quarantine %s: %v", path, err)
	}
	c.logf("cache: quarantined corrupt entry %s -> %s: %v", path, q, cause)
}

// Put durably stores body under key: temp file in the same directory,
// contents fsync'd, atomic rename over any existing entry, directory
// fsync. Readers racing a Put see either the old complete entry or the
// new one, never a torn hybrid.
func (c *Cache) Put(key string, body []byte) error {
	path := c.path(key)
	header := fmt.Sprintf("%s %08x %d\n", cacheMagic,
		crc32.Checksum(body, crc32.MakeTable(crc32.Castagnoli)), len(body))
	tmp, err := c.fs.CreateTemp(c.dir, key+".tmp-*")
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	c.trackTmp(filepath.Base(tmp.Name()), true)
	defer c.trackTmp(filepath.Base(tmp.Name()), false)
	defer c.fs.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write([]byte(header)); err == nil {
		_, err = tmp.Write(body)
		if err == nil {
			err = tmp.Sync()
		}
	} else {
		tmp.Close()
		return fmt.Errorf("cache: write: %w", err)
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("cache: write: %w", err)
	}
	if err := c.fs.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	if err := journal.SyncDirOn(c.fs, c.dir); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	c.touch(key, int64(len(header)+len(body)), true)
	return nil
}

// Remove evicts key's entry from disk and the index. A missing file is
// not an error (a concurrent quarantine or a crash already took it).
func (c *Cache) Remove(key string) error {
	c.forget(key)
	if err := c.fs.Remove(c.path(key)); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// Len counts stored (non-quarantined) entries, for the health endpoint.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Usage reports the summed size of stored entries in bytes.
func (c *Cache) Usage() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total int64
	for _, m := range c.entries {
		total += m.size
	}
	return total
}

// lruEntry is one row of the eviction ordering.
type lruEntry struct {
	key  string
	size int64
	last uint64
}

// LRU returns the entries oldest-access-first (ties broken by key so the
// order — and therefore eviction — is deterministic).
func (c *Cache) LRU() []lruEntry {
	c.mu.Lock()
	out := make([]lruEntry, 0, len(c.entries))
	for k, m := range c.entries {
		out = append(out, lruEntry{key: k, size: m.size, last: m.last})
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].last != out[j].last {
			return out[i].last < out[j].last
		}
		return out[i].key < out[j].key
	})
	return out
}
