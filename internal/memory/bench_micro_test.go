package memory

import (
	"testing"

	"repro/internal/sim"
)

// BenchmarkCacheHit measures the hot path of the memory system.
func BenchmarkCacheHit(b *testing.B) {
	sink := &sinkPort{lat: 100}
	c := NewCache(CacheConfig{
		Name: "c", SizeBytes: 64 * 1024, Assoc: 8, LineBytes: 128,
		Policy: WriteBack, HitLat: 10, Serv: 1, Next: sink,
	})
	c.Access(0, Request{Addr: 0})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(sim.Tick(i), Request{Addr: 0})
	}
}

// BenchmarkCacheMissStream measures the streaming-miss path including
// victim selection and writeback generation.
func BenchmarkCacheMissStream(b *testing.B) {
	sink := &sinkPort{lat: 100}
	c := NewCache(CacheConfig{
		Name: "c", SizeBytes: 64 * 1024, Assoc: 8, LineBytes: 128,
		Policy: WriteBack, HitLat: 10, Serv: 1, Next: sink,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(sim.Tick(i), Request{Addr: Addr(i * 128), Write: i%2 == 0})
		if len(sink.reqs) > 1<<16 {
			sink.reqs = sink.reqs[:0]
		}
	}
}

// BenchmarkDRAMAccess measures the channel-queueing model.
func BenchmarkDRAMAccess(b *testing.B) {
	d := NewDRAM("m", 4, 179e9, 70*sim.Nanosecond, 128, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Access(sim.Tick(i), Request{Addr: Addr(i * 128)})
	}
}
