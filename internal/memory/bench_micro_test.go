package memory

import (
	"testing"

	"repro/internal/sim"
)

// BenchmarkCacheHit measures the hot path of the memory system.
func BenchmarkCacheHit(b *testing.B) {
	sink := &sinkPort{lat: 100}
	c := NewCache(CacheConfig{
		Name: "c", SizeBytes: 64 * 1024, Assoc: 8, LineBytes: 128,
		Policy: WriteBack, HitLat: 10, Serv: 1, Next: sink,
	})
	c.Access(0, Request{Addr: 0})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(sim.Tick(i), Request{Addr: 0})
	}
}

// TestCacheHitZeroAlloc asserts the cache-hit path is allocation-free: with
// interned counter handles there is no per-access name concatenation or
// map insertion left.
func TestCacheHitZeroAlloc(t *testing.T) {
	sink := &sinkPort{lat: 100}
	c := NewCache(CacheConfig{
		Name: "c", SizeBytes: 64 * 1024, Assoc: 8, LineBytes: 128,
		Policy: WriteBack, HitLat: 10, Serv: 1, Next: sink,
	})
	c.Access(0, Request{Addr: 0})
	var now sim.Tick
	if a := testing.AllocsPerRun(1000, func() {
		now++
		c.Access(now, Request{Addr: 0})
	}); a != 0 {
		t.Fatalf("cache hit allocates %.1f/op, want 0", a)
	}
}

// TestDRAMAccessZeroAlloc asserts the DRAM channel model's access path is
// allocation-free, including the per-component access counter.
func TestDRAMAccessZeroAlloc(t *testing.T) {
	d := NewDRAM("m", 4, 179e9, 70*sim.Nanosecond, 128, nil)
	var now sim.Tick
	if a := testing.AllocsPerRun(1000, func() {
		now++
		d.Access(now, Request{Addr: Addr(now) * 128})
	}); a != 0 {
		t.Fatalf("DRAM access allocates %.1f/op, want 0", a)
	}
}

// BenchmarkCacheMissStream measures the streaming-miss path including
// victim selection and writeback generation.
func BenchmarkCacheMissStream(b *testing.B) {
	sink := &sinkPort{lat: 100}
	c := NewCache(CacheConfig{
		Name: "c", SizeBytes: 64 * 1024, Assoc: 8, LineBytes: 128,
		Policy: WriteBack, HitLat: 10, Serv: 1, Next: sink,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(sim.Tick(i), Request{Addr: Addr(i * 128), Write: i%2 == 0})
		if len(sink.reqs) > 1<<16 {
			sink.reqs = sink.reqs[:0]
		}
	}
}

// BenchmarkDRAMAccess measures the channel-queueing model.
func BenchmarkDRAMAccess(b *testing.B) {
	d := NewDRAM("m", 4, 179e9, 70*sim.Nanosecond, 128, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Access(sim.Tick(i), Request{Addr: Addr(i * 128)})
	}
}
