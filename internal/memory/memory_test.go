package memory

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/stats"
)

func TestLineMath(t *testing.T) {
	if LineAddr(0x12345, 128) != 0x12300 {
		t.Fatalf("LineAddr wrong: %#x", LineAddr(0x12345, 128))
	}
	if LinesSpanned(0, 128, 128) != 1 {
		t.Fatal("one line")
	}
	if LinesSpanned(64, 128, 128) != 2 {
		t.Fatal("straddle should span 2")
	}
	if LinesSpanned(0, 0, 128) != 0 {
		t.Fatal("empty span")
	}
	if LinesSpanned(128, 256, 128) != 2 {
		t.Fatal("aligned 256B should span 2")
	}
}

func TestSpaceAlloc(t *testing.T) {
	s := NewSpace("cpu", 0x1000, 1<<20, 128)
	a := s.Alloc(100)
	b := s.Alloc(100)
	if a != 0x1000 {
		t.Fatalf("first alloc at %#x", a)
	}
	if b != 0x1080 {
		t.Fatalf("second alloc not line aligned: %#x", b)
	}
	if !s.Contains(a) || s.Contains(0x10) {
		t.Fatal("Contains wrong")
	}
	if s.Used() != uint64(b-0x1000)+100 {
		t.Fatalf("Used = %d", s.Used())
	}
	c := s.AllocAligned(10, 1) // deliberately misaligned
	if c%128 == 0 {
		t.Fatalf("expected misaligned alloc, got %#x", c)
	}
}

func TestSpaceExhaustionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on exhaustion")
		}
	}()
	s := NewSpace("tiny", 0, 256, 1)
	s.Alloc(512)
}

// sinkPort records accesses and returns a fixed latency.
type sinkPort struct {
	lat  sim.Tick
	reqs []Request
}

func (p *sinkPort) Access(now sim.Tick, req Request) sim.Tick {
	p.reqs = append(p.reqs, req)
	return now + p.lat
}

func (p *sinkPort) count(write bool) int {
	n := 0
	for _, r := range p.reqs {
		if r.Write == write {
			n++
		}
	}
	return n
}

func newTestCache(size, assoc int, pol WritePolicy, next Port) *Cache {
	return NewCache(CacheConfig{
		Name: "c", SizeBytes: size, Assoc: assoc, LineBytes: 128,
		Policy: pol, HitLat: 10, Serv: 1, Next: next,
	})
}

func TestCacheHitMiss(t *testing.T) {
	sink := &sinkPort{lat: 100}
	c := newTestCache(4*1024, 4, WriteBack, sink)

	// Cold miss goes to next level.
	done := c.Access(0, Request{Addr: 0})
	if done < 100 {
		t.Fatalf("miss too fast: %d", done)
	}
	if c.Counters().Get("c.misses") != 1 {
		t.Fatal("miss not counted")
	}
	// Re-access hits.
	done2 := c.Access(done, Request{Addr: 64}) // same line
	if done2-done > 20 {
		t.Fatalf("hit too slow: %d", done2-done)
	}
	if c.Counters().Get("c.hits") != 1 {
		t.Fatal("hit not counted")
	}
	if len(sink.reqs) != 1 {
		t.Fatalf("next level saw %d reqs, want 1", len(sink.reqs))
	}
}

func TestCacheWriteBackEviction(t *testing.T) {
	sink := &sinkPort{lat: 100}
	// 2 sets x 2 ways. Lines mapping to set 0: addr multiples of 2*128.
	c := newTestCache(4*128, 2, WriteBack, sink)

	c.Access(0, Request{Addr: 0, Write: true})    // dirty line 0 (fetch = 1 read)
	c.Access(0, Request{Addr: 256, Write: true})  // dirty line 256, same set
	c.Access(0, Request{Addr: 512, Write: false}) // evicts LRU (line 0) -> writeback
	if got := sink.count(true); got != 1 {
		t.Fatalf("writebacks to next = %d, want 1", got)
	}
	if got := c.Counters().Get("c.writebacks"); got != 1 {
		t.Fatalf("writeback counter = %d", got)
	}
	// The writeback must be a full-line write.
	for _, r := range sink.reqs {
		if r.Write && !r.Writeback {
			t.Fatal("eviction write not marked Writeback")
		}
	}
}

func TestCacheWritebackInstallNoFetch(t *testing.T) {
	sink := &sinkPort{lat: 100}
	c := newTestCache(4*1024, 4, WriteBack, sink)
	// A full-line writeback from an upper level installs without fetching.
	c.Access(0, Request{Addr: 0, Write: true, Writeback: true})
	if got := sink.count(false); got != 0 {
		t.Fatalf("writeback install fetched %d lines", got)
	}
	if f, d := c.Peek(0); !f || !d {
		t.Fatal("writeback line should be present and dirty")
	}
}

func TestCacheLRU(t *testing.T) {
	sink := &sinkPort{lat: 100}
	c := newTestCache(2*128, 2, WriteBack, sink) // 1 set, 2 ways
	c.Access(0, Request{Addr: 0})
	c.Access(0, Request{Addr: 128})
	c.Access(0, Request{Addr: 0}) // touch 0, so 128 becomes LRU
	c.Access(0, Request{Addr: 256})
	if f, _ := c.Peek(0); !f {
		t.Fatal("recently used line evicted")
	}
	if f, _ := c.Peek(128); f {
		t.Fatal("LRU line not evicted")
	}
}

func TestWriteThroughNoAlloc(t *testing.T) {
	sink := &sinkPort{lat: 100}
	c := newTestCache(4*1024, 4, WriteThroughNoAlloc, sink)
	c.Access(0, Request{Addr: 0, Write: true})
	if f, _ := c.Peek(0); f {
		t.Fatal("store must not allocate")
	}
	if got := sink.count(true); got != 1 {
		t.Fatalf("store not forwarded: %d", got)
	}
	// Load allocates; store to the cached line still writes through and
	// leaves the line clean.
	c.Access(0, Request{Addr: 512})
	c.Access(0, Request{Addr: 512, Write: true})
	if f, d := c.Peek(512); !f || d {
		t.Fatalf("write-through line state wrong: found=%v dirty=%v", f, d)
	}
	if got := sink.count(true); got != 2 {
		t.Fatalf("second store not forwarded: %d", got)
	}
}

// Write-through stores are posted: the requester sees the L1 hit latency
// whether the line is present or not; the downstream write proceeds in the
// background. A miss must not charge the requester the next-level latency.
func TestWriteThroughStorePosted(t *testing.T) {
	sink := &sinkPort{lat: 100}
	c := newTestCache(4*1024, 4, WriteThroughNoAlloc, sink)
	// Store miss: posted, requester pays only issue time (HitLat applies to
	// the data response, which a posted store doesn't wait for).
	missDone := c.Access(0, Request{Addr: 0, Write: true})
	// Store hit: warm a line with a load first.
	c.Access(100, Request{Addr: 512})
	hitDone := c.Access(1000, Request{Addr: 512, Write: true})
	// Both complete after the L1 pipeline (bank serv + hit latency) but
	// strictly before the downstream latency would land.
	if missDone < 10 || missDone >= 100 {
		t.Fatalf("store miss completes at %d, want L1 latency only", missDone)
	}
	if hitDone < 1010 || hitDone >= 1100 {
		t.Fatalf("store hit completes at %d, want L1 latency only", hitDone)
	}
	if got := sink.count(true); got != 2 {
		t.Fatalf("stores forwarded = %d, want 2", got)
	}
}

func TestProbe(t *testing.T) {
	sink := &sinkPort{lat: 100}
	c := newTestCache(4*1024, 4, WriteBack, sink)
	c.Access(0, Request{Addr: 0, Write: true, Comp: stats.GPU})

	found, dirty, comp := c.Probe(0, false)
	if !found || !dirty || comp != stats.GPU {
		t.Fatalf("read probe: found=%v dirty=%v comp=%v", found, dirty, comp)
	}
	// Read probe downgrades to clean but keeps the line.
	if f, d := c.Peek(0); !f || d {
		t.Fatalf("after read probe: found=%v dirty=%v", f, d)
	}
	// Write probe invalidates.
	if f, _, _ := c.Probe(0, true); !f {
		t.Fatal("write probe should find line")
	}
	if f, _ := c.Peek(0); f {
		t.Fatal("write probe should invalidate")
	}
	if f, _, _ := c.Probe(999999, false); f {
		t.Fatal("probe of absent line found something")
	}
}

func TestInvalidateRange(t *testing.T) {
	sink := &sinkPort{lat: 100}
	c := newTestCache(16*1024, 4, WriteBack, sink)
	c.Access(0, Request{Addr: 0, Write: true})
	c.Access(0, Request{Addr: 128, Write: false})
	c.Access(0, Request{Addr: 4096, Write: true}) // outside range
	before := sink.count(true)
	c.InvalidateRange(0, 0, 256, stats.Copy)
	if f, _ := c.Peek(0); f {
		t.Fatal("line 0 not invalidated")
	}
	if f, _ := c.Peek(128); f {
		t.Fatal("line 128 not invalidated")
	}
	if f, _ := c.Peek(4096); !f {
		t.Fatal("line outside range invalidated")
	}
	if got := sink.count(true) - before; got != 1 {
		t.Fatalf("dirty-line invalidation writebacks = %d, want 1", got)
	}
}

func TestFlushAll(t *testing.T) {
	sink := &sinkPort{lat: 100}
	c := newTestCache(4*1024, 4, WriteBack, sink)
	c.Access(0, Request{Addr: 0, Write: true})
	c.Access(0, Request{Addr: 128, Write: false})
	before := sink.count(true)
	c.FlushAll(0)
	if got := sink.count(true) - before; got != 1 {
		t.Fatalf("flush writebacks = %d, want 1", got)
	}
	if f, _ := c.Peek(0); f {
		t.Fatal("flush left lines valid")
	}
}

func TestDRAMBandwidthThrottling(t *testing.T) {
	// One channel at 128 GB/s -> 1ns per 128B line.
	d := NewDRAM("m", 1, 128e9, 50*sim.Nanosecond, 128, nil)
	t1 := d.Access(0, Request{Addr: 0})
	t2 := d.Access(0, Request{Addr: 128})
	// Second access must queue behind the first by one service slot.
	if t2-t1 != sim.Tick(sim.Nanosecond) {
		t.Fatalf("service spacing = %d ps, want 1000", t2-t1)
	}
	if d.Counters().Get("m.reads") != 2 {
		t.Fatal("reads not counted")
	}
	if d.BusyTime() != 2*sim.Nanosecond {
		t.Fatalf("busy = %d", d.BusyTime())
	}
}

func TestDRAMChannelInterleave(t *testing.T) {
	d := NewDRAM("m", 4, 179e9, 70*sim.Nanosecond, 128, nil)
	// Lines 0..3 land on different channels, so all should start at 0 and
	// complete at the same time.
	var times [4]sim.Tick
	for i := 0; i < 4; i++ {
		times[i] = d.Access(0, Request{Addr: Addr(i * 128)})
	}
	for i := 1; i < 4; i++ {
		if times[i] != times[0] {
			t.Fatalf("channel %d not parallel: %v", i, times)
		}
	}
	// PeakBytesPerSec round-trips approximately.
	got := d.PeakBytesPerSec()
	if got < 170e9 || got > 190e9 {
		t.Fatalf("peak = %g", got)
	}
}

func TestDRAMOnAccessHook(t *testing.T) {
	d := NewDRAM("m", 1, 100e9, 0, 128, nil)
	var seen []Request
	d.OnAccess = func(now sim.Tick, req Request) { seen = append(seen, req) }
	d.Access(0, Request{Addr: 0, Write: true, Comp: stats.Copy})
	if len(seen) != 1 || !seen[0].Write || seen[0].Comp != stats.Copy {
		t.Fatalf("hook saw %+v", seen)
	}
}

func TestFabricCoherentC2C(t *testing.T) {
	dram := NewDRAM("m", 4, 179e9, 70*sim.Nanosecond, 128, nil)
	f := NewFabric(FabricConfig{Name: "f", Lat: 4 * sim.Nanosecond, Serv: 100, Coherent: true, C2CLat: 40 * sim.Nanosecond, DRAM: dram})
	owner := NewCache(CacheConfig{Name: "l2a", SizeBytes: 4 * 1024, Assoc: 4, LineBytes: 128, Policy: WriteBack, HitLat: 10, Next: f, SrcID: 1})
	f.Attach(ProbeGroup{SrcID: 1, Caches: []*Cache{owner}})

	// Owner dirties a line.
	owner.Access(0, Request{Addr: 0, Write: true, Comp: stats.GPU, SrcID: 1})
	dramReadsBefore := dram.Counters().Get("m.reads")

	// A different hierarchy reads it through the fabric: served c2c.
	f.Access(0, Request{Addr: 0, SrcID: 2, Comp: stats.CPU})
	if f.Counters().Get("f.c2c_transfers") != 1 {
		t.Fatal("expected cache-to-cache transfer")
	}
	if dram.Counters().Get("m.reads") != dramReadsBefore {
		t.Fatal("c2c transfer must not read DRAM")
	}
	// Dirty downgrade wrote the data back.
	if dram.Counters().Get("m.writes") != 1 {
		t.Fatal("dirty downgrade must write back")
	}
	if f, d := owner.Peek(0); !f || d {
		t.Fatal("owner copy should be downgraded to clean")
	}
	// A second read now also hits c2c (clean copy) without another writeback.
	f.Access(0, Request{Addr: 0, SrcID: 2, Comp: stats.CPU})
	if dram.Counters().Get("m.writes") != 1 {
		t.Fatal("clean c2c must not write back")
	}
}

func TestFabricDoesNotProbeRequester(t *testing.T) {
	dram := NewDRAM("m", 4, 179e9, 70*sim.Nanosecond, 128, nil)
	f := NewFabric(FabricConfig{Name: "f", Coherent: true, DRAM: dram})
	c := NewCache(CacheConfig{Name: "l2", SizeBytes: 4 * 1024, Assoc: 4, LineBytes: 128, Policy: WriteBack, HitLat: 10, Next: f, SrcID: 1})
	f.Attach(ProbeGroup{SrcID: 1, Caches: []*Cache{c}})
	c.Access(0, Request{Addr: 0, Write: true, SrcID: 1})
	// Request from the same hierarchy: must go to DRAM, not self-probe.
	f.Access(0, Request{Addr: 0, SrcID: 1})
	if f.Counters().Get("f.c2c_transfers") != 0 {
		t.Fatal("fabric probed requester's own hierarchy")
	}
	if found, _ := c.Peek(0); !found {
		t.Fatal("self-probe invalidated requester's line")
	}
}

func TestFabricNonCoherentGoesToDRAM(t *testing.T) {
	dram := NewDRAM("m", 1, 100e9, 0, 128, nil)
	f := NewFabric(FabricConfig{Name: "f", Coherent: false, DRAM: dram})
	c := NewCache(CacheConfig{Name: "l2", SizeBytes: 4 * 1024, Assoc: 4, LineBytes: 128, Policy: WriteBack, HitLat: 10, Next: f, SrcID: 1})
	f.Attach(ProbeGroup{SrcID: 1, Caches: []*Cache{c}})
	c.Access(0, Request{Addr: 0, Write: true, SrcID: 1})
	f.Access(0, Request{Addr: 0, SrcID: 2})
	if dram.Counters().Get("m.reads") == 0 {
		t.Fatal("non-coherent fabric must read DRAM")
	}
}

func TestFabricInvalidateRange(t *testing.T) {
	dram := NewDRAM("m", 1, 100e9, 0, 128, nil)
	f := NewFabric(FabricConfig{Name: "f", Coherent: true, DRAM: dram})
	c := NewCache(CacheConfig{Name: "l2", SizeBytes: 4 * 1024, Assoc: 4, LineBytes: 128, Policy: WriteBack, HitLat: 10, Next: f, SrcID: 1})
	f.Attach(ProbeGroup{SrcID: 1, Caches: []*Cache{c}})
	c.Access(0, Request{Addr: 0, Write: true, SrcID: 1})
	f.InvalidateRange(0, 0, 4096, stats.Copy)
	if found, _ := c.Peek(0); found {
		t.Fatal("fabric invalidate missed cache")
	}
	if dram.Counters().Get("m.writes") != 1 {
		t.Fatal("invalidate of dirty line must write back")
	}
}

// Property: the cache never holds more distinct lines than its capacity, and
// Peek agrees with the access history for a small address universe.
func TestCacheCapacityProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		sink := &sinkPort{lat: 10}
		const ways, sets = 4, 8
		c := newTestCache(ways*sets*128, ways, WriteBack, sink)
		for _, op := range ops {
			addr := Addr(op%64) * 128
			c.Access(0, Request{Addr: addr, Write: op%3 == 0})
		}
		// Count valid lines via Peek over the universe.
		valid := 0
		for a := 0; a < 64; a++ {
			if found, _ := c.Peek(Addr(a * 128)); found {
				valid++
			}
		}
		return valid <= ways*sets
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: every dirtied line is eventually accounted — at the end of any
// access sequence, (dirty lines still cached) + (writebacks seen below) ==
// total distinct lines ever dirtied is NOT a strict invariant (re-dirtying),
// so instead check conservation of writes: writes below never exceed stores
// issued (plus evictions can only write back previously dirtied lines).
func TestCacheWritebackConservationProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		sink := &sinkPort{lat: 10}
		c := newTestCache(4*128, 2, WriteBack, sink)
		stores := 0
		for _, op := range ops {
			addr := Addr(op%32) * 128
			w := op%2 == 0
			if w {
				stores++
			}
			c.Access(0, Request{Addr: addr, Write: w})
		}
		c.FlushAll(0)
		return sink.count(true) <= stores
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
