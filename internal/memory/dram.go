package memory

import (
	"repro/internal/sim"
	"repro/internal/stats"
)

// DRAM models one off-chip memory: N channels, line-interleaved, each with a
// fixed access latency plus a bandwidth-derived per-line service time
// enforced by a busy-until model. Effective bandwidth under random traffic
// lands near the paper's observed ~82% of peak because channel load is
// uneven and latency is not pipelined across a channel's queue head.
type DRAM struct {
	Name      string
	lineBytes int
	latency   sim.Tick
	servLine  sim.Tick // lineBytes / per-channel bandwidth
	channels  []sim.BusyModel
	ctr       *stats.Counters

	// Precomputed channel index math and interned counter handles — the
	// per-access path touches no strings and no maps. Per-component access
	// counters are a fixed array indexed by stats.Component.
	li      lineIndexer
	chanMod modder
	cReads  stats.Counter
	cWrites stats.Counter
	cAccess [stats.NumComponents]stats.Counter

	// OnAccess, if set, observes every access at its service start time.
	// The analysis layer installs the off-chip classifier here.
	OnAccess func(now sim.Tick, req Request)

	// Injected channel stall (see StallChannel).
	stallCh   int
	stallFrom sim.Tick
	stallTo   sim.Tick
}

// NewDRAM builds a DRAM with the given aggregate peak bandwidth split across
// channels.
func NewDRAM(name string, channels int, bytesPerSec float64, latency sim.Tick, lineBytes int, ctr *stats.Counters) *DRAM {
	if ctr == nil {
		ctr = stats.NewCounters()
	}
	perChan := bytesPerSec / float64(channels)
	serv := sim.Tick(float64(lineBytes) / perChan * float64(sim.Second))
	if serv < 1 {
		serv = 1
	}
	d := &DRAM{
		Name:      name,
		lineBytes: lineBytes,
		latency:   latency,
		servLine:  serv,
		channels:  make([]sim.BusyModel, channels),
		ctr:       ctr,
		li:        newLineIndexer(lineBytes),
		chanMod:   newModder(channels),
	}
	d.cReads = ctr.Handle(name + ".reads")
	d.cWrites = ctr.Handle(name + ".writes")
	d.cAccess = ctr.ComponentHandles(name + ".access.")
	return d
}

// Counters exposes the DRAM counter group.
func (d *DRAM) Counters() *stats.Counters { return d.ctr }

// StallChannel wedges channel ch for the simulated window [from, to) — the
// fault-injection hook for a stalled DRAM channel. Accesses that would
// begin service inside the window wait until it ends; other channels are
// unaffected. Out-of-range channels and empty windows are ignored.
func (d *DRAM) StallChannel(ch int, from, to sim.Tick) {
	if ch < 0 || ch >= len(d.channels) || to <= from {
		return
	}
	d.stallCh, d.stallFrom, d.stallTo = ch, from, to
}

// Access services one line access.
func (d *DRAM) Access(now sim.Tick, req Request) sim.Tick {
	chIdx := d.chanMod.mod(d.li.index(req.Addr))
	ch := &d.channels[chIdx]
	if d.stallTo > d.stallFrom && chIdx == d.stallCh {
		// Push service past the stall window if it would begin inside it.
		at := now
		if f := ch.FreeAt(); f > at {
			at = f
		}
		if at >= d.stallFrom && at < d.stallTo {
			now = d.stallTo
		}
	}
	start := ch.Claim(now, d.servLine)
	if req.Write {
		d.cWrites.Inc()
	} else {
		d.cReads.Inc()
	}
	d.cAccess[req.Comp].Inc()
	if d.OnAccess != nil {
		d.OnAccess(start, req)
	}
	return start + d.servLine + d.latency
}

// BusyTime reports summed channel busy time, for utilization accounting.
func (d *DRAM) BusyTime() sim.Tick {
	var t sim.Tick
	for i := range d.channels {
		t += d.channels[i].BusyTime()
	}
	return t
}

// PeakBytesPerSec reports the configured aggregate peak bandwidth.
func (d *DRAM) PeakBytesPerSec() float64 {
	return float64(d.lineBytes) / float64(d.servLine) * float64(sim.Second) * float64(len(d.channels))
}

// LineBytes reports the access granularity.
func (d *DRAM) LineBytes() int { return d.lineBytes }
