package memory

import "fmt"

// Space is a bump allocator over a contiguous physical address range. The
// discrete system has two disjoint spaces (CPU DDR3 and GPU GDDR5); the
// heterogeneous processor has one shared space. Disjoint ranges let a single
// analysis see which memory an address belongs to.
type Space struct {
	Name       string
	Base, Lim  Addr
	next       Addr
	allocAlign int
}

// NewSpace builds a space covering [base, base+size). Allocations are
// aligned to align bytes (typically the cache line size; the paper notes
// CUDA cache-line-aligns GPU allocations).
func NewSpace(name string, base Addr, size uint64, align int) *Space {
	if align <= 0 {
		align = 1
	}
	return &Space{Name: name, Base: base, Lim: base + Addr(size), next: base, allocAlign: align}
}

// Alloc reserves n bytes and returns the base address. It panics if the
// space is exhausted — simulated workloads are sized by the caller, so
// exhaustion is a programming error, not a runtime condition.
func (s *Space) Alloc(n int) Addr {
	return s.AllocAligned(n, s.allocAlign)
}

// AllocAligned reserves n bytes at the given alignment. The paper observes
// that CPU-GPU-shared allocations in limited-copy benchmarks can lose the
// CUDA allocator's line alignment, increasing GPU coalescing traffic; pass
// align < line size to model a misaligned allocator.
func (s *Space) AllocAligned(n, align int) Addr {
	if n < 0 {
		panic(fmt.Sprintf("space %s: negative allocation %d", s.Name, n))
	}
	if align <= 0 {
		align = 1
	}
	a := (s.next + Addr(align-1)) &^ Addr(align-1)
	if a+Addr(n) > s.Lim {
		panic(fmt.Sprintf("space %s exhausted: need %d bytes at %#x, limit %#x", s.Name, n, a, s.Lim))
	}
	s.next = a + Addr(n)
	return a
}

// Used reports bytes consumed so far.
func (s *Space) Used() uint64 { return uint64(s.next - s.Base) }

// Contains reports whether addr falls inside this space's range.
func (s *Space) Contains(addr Addr) bool { return addr >= s.Base && addr < s.Lim }
