package memory

import (
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// WritePolicy selects how a cache handles stores.
type WritePolicy int

const (
	// WriteBack allocates on store miss and marks lines dirty (CPU L1D/L2,
	// GPU L2).
	WriteBack WritePolicy = iota
	// WriteThroughNoAlloc forwards stores to the next level immediately and
	// never dirties lines (Fermi-style GPU L1 global stores). Loads still
	// allocate. This conveniently keeps all dirty GPU data in the shared L2,
	// so the coherence fabric only needs to probe L2-level caches.
	//
	// Write-through stores are POSTED regardless of hit or miss: the
	// downstream write is issued at the L1 completion time and consumes
	// downstream bandwidth, but the requester observes only the L1 hit
	// latency. (Fermi global stores retire from the SM's perspective once
	// handed to the L1; store buffering hides the L2 round trip.)
	WriteThroughNoAlloc
)

type cacheLine struct {
	tag   Addr // line base address
	valid bool
	dirty bool
	lru   uint64
	comp  stats.Component // who produced the dirty data (writeback attribution)
}

// Cache is a set-associative cache with LRU replacement, write-allocate
// write-back or write-through-no-allocate policy, banked ports, and
// latency-forwarding timing.
type Cache struct {
	Name      string
	lineBytes int
	nsets     int
	assoc     int
	policy    WritePolicy
	hitLat    sim.Tick
	serv      sim.Tick // port occupancy per access
	banks     []sim.BusyModel
	next      Port
	srcID     int
	ctr       *stats.Counters
	lines     []cacheLine // nsets*assoc
	lruClock  uint64

	// Precomputed shift/mask index math (power-of-two fast path).
	li      lineIndexer
	setMod  modder
	bankMod modder

	// Interned counter handles, resolved once in NewCache so the access
	// hot path increments a slot directly — no per-access name
	// concatenation or map hash.
	cHits, cMisses, cWriteThrough, cWritebacks stats.Counter
	cInvalWB, cRangeWB, cFlushWB               stats.Counter

	// Tr is the optional trace sink (nil-safe). Spill instants are capped
	// per cache: a thrashing cache evicts millions of dirty lines, and the
	// cap keeps traced runs bounded while still showing where spilling
	// starts. One "spill events capped" marker records the cutoff.
	Tr       *trace.Recorder
	trSpills int
}

// maxSpillEvents bounds per-cache dirty-eviction instants in a trace.
const maxSpillEvents = 512

// CacheConfig collects constructor parameters for a Cache.
type CacheConfig struct {
	Name      string
	SizeBytes int
	Assoc     int
	LineBytes int
	Policy    WritePolicy
	HitLat    sim.Tick
	Serv      sim.Tick // per-access port busy time; 0 means unthrottled
	Banks     int      // parallel ports selected by address; min 1
	Next      Port
	SrcID     int
	Counters  *stats.Counters
}

// NewCache builds a cache. Sets are derived from size/assoc/line; a size not
// divisible into at least one set panics, as that is a configuration bug.
func NewCache(cfg CacheConfig) *Cache {
	nsets := cfg.SizeBytes / (cfg.Assoc * cfg.LineBytes)
	if nsets <= 0 {
		panic("cache " + cfg.Name + ": size too small for assoc*line")
	}
	if cfg.Banks < 1 {
		cfg.Banks = 1
	}
	if cfg.Counters == nil {
		cfg.Counters = stats.NewCounters()
	}
	c := &Cache{
		Name:      cfg.Name,
		lineBytes: cfg.LineBytes,
		nsets:     nsets,
		assoc:     cfg.Assoc,
		policy:    cfg.Policy,
		hitLat:    cfg.HitLat,
		serv:      cfg.Serv,
		banks:     make([]sim.BusyModel, cfg.Banks),
		next:      cfg.Next,
		srcID:     cfg.SrcID,
		ctr:       cfg.Counters,
		lines:     make([]cacheLine, nsets*cfg.Assoc),
		li:        newLineIndexer(cfg.LineBytes),
		setMod:    newModder(nsets),
		bankMod:   newModder(cfg.Banks),
	}
	c.cHits = c.ctr.Handle(cfg.Name + ".hits")
	c.cMisses = c.ctr.Handle(cfg.Name + ".misses")
	c.cWriteThrough = c.ctr.Handle(cfg.Name + ".write_through")
	c.cWritebacks = c.ctr.Handle(cfg.Name + ".writebacks")
	c.cInvalWB = c.ctr.Handle(cfg.Name + ".inval_writebacks")
	c.cRangeWB = c.ctr.Handle(cfg.Name + ".range_writebacks")
	c.cFlushWB = c.ctr.Handle(cfg.Name + ".flush_writebacks")
	return c
}

// Counters exposes the cache's counter group (hits/misses/writebacks,
// prefixed with the cache name).
func (c *Cache) Counters() *stats.Counters { return c.ctr }

func (c *Cache) set(addr Addr) []cacheLine {
	idx := c.setMod.mod(c.li.index(addr))
	return c.lines[idx*c.assoc : (idx+1)*c.assoc]
}

func (c *Cache) bank(addr Addr) *sim.BusyModel {
	return &c.banks[c.bankMod.mod(c.li.index(addr))]
}

// Access services one line-granularity request and returns its completion
// time. Store misses under write-back fetch the line as a read from the next
// level (the off-chip write happens later, at eviction — exactly the
// semantics the paper's off-chip classifier depends on).
func (c *Cache) Access(now sim.Tick, req Request) sim.Tick {
	addr := LineAddr(req.Addr, c.lineBytes)
	start := c.bank(addr).Claim(now, c.serv)
	t := start + c.hitLat

	set := c.set(addr)
	c.lruClock++
	for i := range set {
		ln := &set[i]
		if ln.valid && ln.tag == addr {
			ln.lru = c.lruClock
			if req.Write {
				if c.policy == WriteThroughNoAlloc {
					c.cWriteThrough.Inc()
					c.next.Access(t, Request{Addr: addr, Write: true, Comp: req.Comp, SrcID: c.srcID})
					return t
				}
				ln.dirty = true
				ln.comp = req.Comp
			}
			c.cHits.Inc()
			return t
		}
	}

	// Miss. A write-through store is posted just like the hit case: the
	// downstream write consumes bandwidth but the requester sees only the
	// L1 latency (see WriteThroughNoAlloc).
	if req.Write && c.policy == WriteThroughNoAlloc {
		c.cWriteThrough.Inc()
		c.next.Access(t, Request{Addr: addr, Write: true, Comp: req.Comp, SrcID: c.srcID})
		return t
	}
	c.cMisses.Inc()

	victim := c.victim(set)
	if victim.valid && victim.dirty {
		c.cWritebacks.Inc()
		c.spillEvent(t, victim)
		// Posted write: consumes downstream bandwidth but is off the
		// requester's critical path.
		c.next.Access(t, Request{Addr: victim.tag, Write: true, Writeback: true, Comp: victim.comp, SrcID: c.srcID})
	}

	if req.Write && req.Writeback {
		// A full-line eviction from the level above installs directly —
		// no fetch needed.
		*victim = cacheLine{tag: addr, valid: true, dirty: true, lru: c.lruClock, comp: req.Comp}
		return t
	}

	// Fetch the line (always a read; write-allocate dirties it on install).
	done := c.next.Access(t, Request{Addr: addr, Comp: req.Comp, SrcID: c.srcID})
	*victim = cacheLine{tag: addr, valid: true, dirty: req.Write, lru: c.lruClock, comp: req.Comp}
	return done
}

// spillEvent records one capacity spill (dirty eviction) in the trace,
// up to the per-cache cap.
func (c *Cache) spillEvent(now sim.Tick, victim *cacheLine) {
	if !c.Tr.Enabled() || c.trSpills > maxSpillEvents {
		return
	}
	c.trSpills++
	if c.trSpills > maxSpillEvents {
		c.Tr.Instant(victim.comp, c.Name, "spill", "spill events capped", now,
			trace.Arg{Key: "cap", Val: maxSpillEvents})
		return
	}
	c.Tr.Instant(victim.comp, c.Name, "spill", "dirty eviction", now,
		trace.Arg{Key: "line", Val: uint64(victim.tag)})
}

// victim picks the replacement way: first invalid, else least recently used.
func (c *Cache) victim(set []cacheLine) *cacheLine {
	vi := 0
	for i := range set {
		if !set[i].valid {
			return &set[i]
		}
		if set[i].lru < set[vi].lru {
			vi = i
		}
	}
	return &set[vi]
}

// Peek reports whether the line is present, without touching LRU or timing.
func (c *Cache) Peek(addr Addr) (found, dirty bool) {
	addr = LineAddr(addr, c.lineBytes)
	set := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].tag == addr {
			return true, set[i].dirty
		}
	}
	return false, false
}

// Probe implements a coherence probe: if the line is present it is
// invalidated (forWrite) or downgraded to clean (read probe). It reports
// presence, whether the copy was dirty, and the component that dirtied it.
// The caller (fabric) is responsible for issuing any DRAM writeback implied
// by a read-probe downgrade of a dirty line.
func (c *Cache) Probe(addr Addr, forWrite bool) (found, dirty bool, comp stats.Component) {
	addr = LineAddr(addr, c.lineBytes)
	set := c.set(addr)
	for i := range set {
		ln := &set[i]
		if ln.valid && ln.tag == addr {
			found, dirty, comp = true, ln.dirty, ln.comp
			if forWrite {
				ln.valid = false
			} else {
				ln.dirty = false
			}
			return found, dirty, comp
		}
	}
	return false, false, 0
}

// InvalidateRange drops every line overlapping [base, base+size). Dirty
// lines are written back through the next level first, as the paper
// specifies for memcpy destinations ("written back or invalidated"). The
// writebacks are posted at time now.
func (c *Cache) InvalidateRange(now sim.Tick, base Addr, size int, comp stats.Component) {
	lo := LineAddr(base, c.lineBytes)
	hi := base + Addr(size)
	dropped, wb := 0, 0
	for i := range c.lines {
		ln := &c.lines[i]
		if ln.valid && ln.tag >= lo && ln.tag < hi {
			if ln.dirty {
				wb++
				c.cInvalWB.Inc()
				c.next.Access(now, Request{Addr: ln.tag, Write: true, Writeback: true, Comp: ln.comp, SrcID: c.srcID})
			}
			ln.valid = false
			dropped++
		}
	}
	if dropped > 0 {
		c.Tr.Instant(comp, c.Name, "coherence", "invalidate range", now,
			trace.Arg{Key: "lines", Val: dropped}, trace.Arg{Key: "writebacks", Val: wb})
	}
}

// WritebackRange writes back (but keeps, now clean) every dirty line in
// [base, base+size). A DMA engine calls this on its source range so it reads
// fresh data without evicting the producer's working set.
func (c *Cache) WritebackRange(now sim.Tick, base Addr, size int) {
	lo := LineAddr(base, c.lineBytes)
	hi := base + Addr(size)
	wb := 0
	for i := range c.lines {
		ln := &c.lines[i]
		if ln.valid && ln.dirty && ln.tag >= lo && ln.tag < hi {
			wb++
			c.cRangeWB.Inc()
			c.next.Access(now, Request{Addr: ln.tag, Write: true, Writeback: true, Comp: ln.comp, SrcID: c.srcID})
			ln.dirty = false
		}
	}
	if wb > 0 {
		c.Tr.Instant(stats.Copy, c.Name, "coherence", "writeback range", now,
			trace.Arg{Key: "writebacks", Val: wb})
	}
}

// FlushAll writes back every dirty line and invalidates the whole cache.
// GPU L1s are flushed at kernel boundaries (they are not coherent).
func (c *Cache) FlushAll(now sim.Tick) {
	wb := 0
	for i := range c.lines {
		ln := &c.lines[i]
		if ln.valid && ln.dirty {
			wb++
			c.cFlushWB.Inc()
			c.next.Access(now, Request{Addr: ln.tag, Write: true, Writeback: true, Comp: ln.comp, SrcID: c.srcID})
		}
		ln.valid = false
	}
	if wb > 0 {
		c.Tr.Instant(stats.GPU, c.Name, "coherence", "flush", now,
			trace.Arg{Key: "writebacks", Val: wb})
	}
}

// ResetTiming clears port busy state but keeps tag contents; used when
// reusing a system across ROI phases in tests.
func (c *Cache) ResetTiming() {
	for i := range c.banks {
		c.banks[i].Reset()
	}
}
