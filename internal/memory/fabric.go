package memory

import (
	"repro/internal/sim"
	"repro/internal/stats"
)

// ProbeGroup is one coherent cache hierarchy attached to a fabric: a CPU
// core's private L1D+L2 stack, or the GPU's shared L2. The SrcID matches
// Request.SrcID so a fabric never probes the requester's own hierarchy.
type ProbeGroup struct {
	SrcID  int
	Caches []*Cache
}

// Fabric is the L2-to-memory-controller interconnect: a port-limited switch
// plus, in the heterogeneous processor, the coherence point. Read misses
// that hit a peer cache are serviced by cache-to-cache transfer instead of
// going off-chip; a dirty peer copy downgraded by a read probe is written
// back to DRAM (MESI, no owned state).
type Fabric struct {
	Name     string
	lat      sim.Tick // switch traversal latency
	serv     sim.Tick // per-access switch occupancy
	port     sim.BusyModel
	coherent bool
	c2cLat   sim.Tick
	groups   []ProbeGroup
	dram     *DRAM
	ctr      *stats.Counters

	cC2C        stats.Counter // interned handles (see NewFabric)
	cC2CDirtyWB stats.Counter
}

// FabricConfig collects Fabric constructor parameters.
type FabricConfig struct {
	Name     string
	Lat      sim.Tick
	Serv     sim.Tick
	Coherent bool
	C2CLat   sim.Tick
	DRAM     *DRAM
	Counters *stats.Counters
}

// NewFabric builds a fabric in front of dram.
func NewFabric(cfg FabricConfig) *Fabric {
	if cfg.Counters == nil {
		cfg.Counters = stats.NewCounters()
	}
	f := &Fabric{
		Name:     cfg.Name,
		lat:      cfg.Lat,
		serv:     cfg.Serv,
		coherent: cfg.Coherent,
		c2cLat:   cfg.C2CLat,
		dram:     cfg.DRAM,
		ctr:      cfg.Counters,
	}
	f.cC2C = f.ctr.Handle(cfg.Name + ".c2c_transfers")
	f.cC2CDirtyWB = f.ctr.Handle(cfg.Name + ".c2c_dirty_writebacks")
	return f
}

// Attach registers a coherent hierarchy for probing.
func (f *Fabric) Attach(g ProbeGroup) { f.groups = append(f.groups, g) }

// Counters exposes the fabric counter group.
func (f *Fabric) Counters() *stats.Counters { return f.ctr }

// DRAM returns the memory behind this fabric.
func (f *Fabric) DRAM() *DRAM { return f.dram }

// Access routes one request: coherence probe for read fills, then DRAM.
// Writes (always writebacks or DMA stores) skip probing — a dirty line has a
// single owner, and DMA ranges are invalidated explicitly before transfer.
func (f *Fabric) Access(now sim.Tick, req Request) sim.Tick {
	start := f.port.Claim(now, f.serv)
	t := start + f.lat

	if f.coherent && !req.Write {
		for gi := range f.groups {
			g := &f.groups[gi]
			if g.SrcID == req.SrcID {
				continue
			}
			for _, c := range g.Caches {
				found, dirty, comp := c.Probe(req.Addr, false)
				if !found {
					continue
				}
				f.cC2C.Inc()
				if dirty {
					// Downgrade writes the dirty data back; the transfer to
					// the requester proceeds in parallel.
					f.cC2CDirtyWB.Inc()
					f.dram.Access(t, Request{Addr: req.Addr, Write: true, Comp: comp, SrcID: g.SrcID})
				}
				return t + f.c2cLat
			}
		}
	}
	return f.dram.Access(t, req)
}

// InvalidateRange invalidates [base, base+size) in every attached hierarchy,
// writing dirty lines back to DRAM. Used by the DMA engine before a copy
// lands in a destination range.
func (f *Fabric) InvalidateRange(now sim.Tick, base Addr, size int, comp stats.Component) {
	for gi := range f.groups {
		for _, c := range f.groups[gi].Caches {
			c.InvalidateRange(now, base, size, comp)
		}
	}
}
