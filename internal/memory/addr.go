// Package memory implements the physical memory system of both simulated
// machines: address spaces and allocation, set-associative write-back caches
// with LRU replacement, DRAM channel models with bandwidth queueing, and the
// coherence fabric that connects L2-level caches to the memory controllers.
//
// Timing follows a latency-forwarding discipline: an access computes its
// completion time synchronously from per-resource busy-until state, and the
// caller schedules its continuation at that time on the event engine. Cache
// tag state mutates at call time, which is accurate to within a hop latency
// because cores issue their requests as events in global time order.
package memory

import (
	"repro/internal/sim"
	"repro/internal/stats"
)

// Addr is a physical byte address.
type Addr uint64

// Request is one line-granularity memory access descriptor.
type Request struct {
	Addr  Addr
	Write bool
	// Writeback marks a full-line eviction write: a cache below installs it
	// without fetching the line first, and DRAM just absorbs it.
	Writeback bool
	Comp      stats.Component
	// SrcID identifies the issuing cache hierarchy for coherence probing
	// (a fabric never probes the requester's own hierarchy).
	SrcID int
}

// Port is anything that can service line-granularity requests: a cache, a
// fabric, or a DRAM. Access returns the absolute completion time; internal
// state (tags, busy-until) is updated immediately.
type Port interface {
	Access(now sim.Tick, req Request) sim.Tick
}

// LineAddr masks addr down to its cache-line base.
func LineAddr(addr Addr, lineBytes int) Addr {
	return addr &^ Addr(lineBytes-1)
}

// pow2Shift returns log2(n) and true when n is a positive power of two.
// Caches and DRAMs precompute shift/mask pairs from their line size, set
// count, and bank/channel count at construction so the per-access index
// math is a shift and a mask instead of a divide and a modulo; non-power-
// of-two geometries fall back to the general form.
func pow2Shift(n int) (uint, bool) {
	if n <= 0 || n&(n-1) != 0 {
		return 0, false
	}
	s := uint(0)
	for m := uint64(n); m > 1; m >>= 1 {
		s++
	}
	return s, true
}

// lineIndexer maps an address to its global line index, by shift when the
// line size is a power of two.
type lineIndexer struct {
	bytes int
	shift uint
	pow2  bool
}

func newLineIndexer(lineBytes int) lineIndexer {
	s, ok := pow2Shift(lineBytes)
	return lineIndexer{bytes: lineBytes, shift: s, pow2: ok}
}

func (li lineIndexer) index(addr Addr) uint64 {
	if li.pow2 {
		return uint64(addr) >> li.shift
	}
	return uint64(addr) / uint64(li.bytes)
}

// modder reduces a line index into a bucket count, by mask when the count
// is a power of two.
type modder struct {
	n    int
	mask uint64
	pow2 bool
}

func newModder(n int) modder {
	_, ok := pow2Shift(n)
	return modder{n: n, mask: uint64(n - 1), pow2: ok}
}

func (m modder) mod(v uint64) int {
	if m.pow2 {
		return int(v & m.mask)
	}
	return int(v % uint64(m.n))
}

// LinesSpanned reports how many lineBytes-sized lines [addr, addr+size)
// touches.
func LinesSpanned(addr Addr, size, lineBytes int) int {
	if size <= 0 {
		return 0
	}
	first := LineAddr(addr, lineBytes)
	last := LineAddr(addr+Addr(size)-1, lineBytes)
	return int((last-first)/Addr(lineBytes)) + 1
}

// StageClock is the global pipeline-stage counter. The analysis layer bumps
// it at every stage boundary (kernel launch, memcpy, CPU phase); the DRAM
// access classifier reads it to compute stage-granularity reuse distance.
type StageClock struct {
	S int
}
