package bench

import "testing"

func TestModeStrings(t *testing.T) {
	want := map[Mode]string{
		ModeCopy: "copy", ModeLimitedCopy: "limited-copy",
		ModeAsyncStreams: "async-streams", ModeParallelChunked: "parallel-chunked",
	}
	for m, s := range want {
		if m.String() != s {
			t.Fatalf("%d -> %q", m, m.String())
		}
	}
}

func TestSystemForModes(t *testing.T) {
	if SystemFor(ModeCopy).Unified() || SystemFor(ModeAsyncStreams).Unified() {
		t.Fatal("copy modes must run on the discrete system")
	}
	if !SystemFor(ModeLimitedCopy).Unified() || !SystemFor(ModeParallelChunked).Unified() {
		t.Fatal("copy-free modes must run on the heterogeneous processor")
	}
}

func TestInfoSupports(t *testing.T) {
	i := Info{ExtraModes: []Mode{ModeAsyncStreams}}
	if !i.Supports(ModeCopy) || !i.Supports(ModeLimitedCopy) {
		t.Fatal("base modes always supported")
	}
	if !i.Supports(ModeAsyncStreams) || i.Supports(ModeParallelChunked) {
		t.Fatal("extra mode handling wrong")
	}
}

// TestTable2MatchesPaper pins the census aggregation to the exact numbers
// in the paper's Table II.
func TestTable2MatchesPaper(t *testing.T) {
	want := []Table2Row{
		{"lonestar", 14, 14, 13, 14, 13, 10},
		{"pannotia", 10, 10, 10, 10, 10, 0},
		{"parboil", 12, 8, 8, 8, 3, 1},
		{"rodinia", 22, 19, 18, 19, 6, 0},
		{"total", 58, 51, 49, 51, 32, 11},
	}
	got := Table2()
	if len(got) != len(want) {
		t.Fatalf("rows = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %s:\n got  %+v\n want %+v", want[i].Suite, got[i], want[i])
		}
	}
}

func TestCensus46WorkInSim(t *testing.T) {
	n := 0
	for _, e := range Census() {
		if e.WorksInSim {
			n++
		}
	}
	if n != 46 {
		t.Fatalf("working benchmarks = %d, want 46 (paper Section III-C)", n)
	}
}

func TestCensusImplementedSubsetWorks(t *testing.T) {
	for _, e := range Census() {
		if e.Implemented && !e.WorksInSim {
			t.Fatalf("%s/%s implemented but flagged as not working", e.Suite, e.Name)
		}
	}
}

func TestScaleN(t *testing.T) {
	if ScaleN(100, SizeSmall) != 100 || ScaleN(100, SizeMedium) != 400 {
		t.Fatal("ScaleN wrong")
	}
}
