package bench

// CensusEntry is one row of the static benchmark census behind Table II:
// the application-level pipeline constructs of all 58 benchmarks across the
// four suites, as characterized by the paper. WorksInSim marks the 46 that
// ran fully in gem5-gpu; Implemented marks the ones re-implemented in this
// repository.
type CensusEntry struct {
	Suite, Name string
	PCComm      bool
	PipeParal   bool
	Regular     bool
	Irregular   bool
	SWQueue     bool
	WorksInSim  bool
	Implemented bool
}

// Census returns the full 58-benchmark table.
func Census() []CensusEntry {
	t, f := true, false
	return []CensusEntry{
		// Lonestar GPU: 14 benchmarks; all have P-C communication and
		// regular constructs, 13 are pipeline-parallelizable (dmr's wide
		// inter-stage data dependencies block it), 13 irregular, 10 use
		// software worklists.
		{"lonestar", "bfs", t, t, t, t, f, t, t},
		{"lonestar", "bfs_wla", t, t, t, t, t, t, t},
		{"lonestar", "bfs_wlc", t, t, t, t, t, t, t},
		{"lonestar", "bfs_wlw", t, t, t, t, t, t, t},
		{"lonestar", "bh", t, t, t, t, f, t, t},
		{"lonestar", "dmr", t, f, t, t, t, t, t},
		{"lonestar", "mst", t, t, t, t, t, t, t},
		{"lonestar", "pta", t, t, t, t, t, f, f},
		{"lonestar", "sp", t, t, t, f, f, f, f},
		{"lonestar", "sssp", t, t, t, t, f, t, t},
		{"lonestar", "sssp_wlc", t, t, t, t, t, t, t},
		{"lonestar", "sssp_wln", t, t, t, t, t, t, t},
		{"lonestar", "tsp", t, t, t, t, t, t, t},
		{"lonestar", "sssp_wlf", t, t, t, t, t, t, t},

		// Pannotia: 10 graph benchmarks; all P-C, pipeline-parallelizable,
		// regular and irregular constructs, none use software queues.
		{"pannotia", "bc", t, t, t, t, f, t, t},
		{"pannotia", "color_max", t, t, t, t, f, t, t},
		{"pannotia", "color_maxmin", t, t, t, t, f, t, t},
		{"pannotia", "fw", t, t, t, t, f, t, t},
		{"pannotia", "fw_block", t, t, t, t, f, t, t},
		{"pannotia", "mis", t, t, t, t, f, t, t},
		{"pannotia", "pr", t, t, t, t, f, t, t},
		{"pannotia", "pr_spmv", t, t, t, t, f, t, t},
		{"pannotia", "sssp", t, t, t, t, f, t, t},
		{"pannotia", "sssp_ell", t, t, t, t, f, t, t},

		// Parboil: 12 benchmarks; 8 with P-C communication (all of those
		// pipeline-parallelizable and regular), 3 irregular, bfs uses a
		// software queue.
		{"parboil", "bfs", t, t, t, t, t, t, t},
		{"parboil", "cutcp", t, t, t, f, f, t, t},
		{"parboil", "fft", t, t, t, f, f, t, t},
		{"parboil", "histo", f, f, f, t, f, f, f},
		{"parboil", "lbm", t, t, t, f, f, t, t},
		{"parboil", "mri-gridding", f, f, f, f, f, f, f},
		{"parboil", "mri-q", t, t, t, f, f, t, t},
		{"parboil", "sad", f, f, f, f, f, f, f},
		{"parboil", "sgemm", t, t, t, f, f, t, t},
		{"parboil", "spmv", t, t, t, t, f, t, t},
		{"parboil", "stencil", t, t, t, f, f, t, t},
		{"parboil", "tpacf", f, f, f, f, f, f, f},

		// Rodinia: 22 benchmarks; 19 with P-C communication and regular
		// constructs, 18 pipeline-parallelizable (nw's many-to-few
		// dependencies block it), 6 irregular, no software queues.
		{"rodinia", "backprop", t, t, t, f, f, t, t},
		{"rodinia", "bfs", t, t, t, t, f, t, t},
		{"rodinia", "b+tree", t, t, t, t, f, f, f},
		{"rodinia", "cell", t, t, t, t, f, f, f},
		{"rodinia", "cfd", t, t, t, f, f, t, t},
		{"rodinia", "dwt2d", t, t, t, f, f, t, t},
		{"rodinia", "gaussian", t, t, t, f, f, t, t},
		{"rodinia", "heartwall", t, t, t, f, f, t, t},
		{"rodinia", "hotspot", t, t, t, f, f, t, t},
		{"rodinia", "kmeans", t, t, t, f, f, t, t},
		{"rodinia", "lavaMD", f, f, f, f, f, f, f},
		{"rodinia", "leukocyte", t, t, t, f, f, f, f},
		{"rodinia", "lud", t, t, t, f, f, t, t},
		{"rodinia", "mummergpu", t, t, t, t, f, t, t},
		{"rodinia", "myocyte", f, f, f, f, f, f, f},
		{"rodinia", "nn", f, f, f, f, f, f, f},
		{"rodinia", "nw", t, f, t, f, f, t, t},
		{"rodinia", "pf_naive", t, t, t, t, f, t, t},
		{"rodinia", "pf_float", t, t, t, t, f, t, t},
		{"rodinia", "pathfinder", t, t, t, f, f, t, t},
		{"rodinia", "srad", t, t, t, f, f, t, t},
		{"rodinia", "streamcluster", t, t, t, f, f, t, t},
	}
}

// Table2Row is one aggregated row of Table II.
type Table2Row struct {
	Suite                                         string
	Num, PCComm, PipeParal, Regular, Irreg, SWQue int
}

// Table2 aggregates the census into the paper's Table II rows plus the
// total row.
func Table2() []Table2Row {
	suites := []string{"lonestar", "pannotia", "parboil", "rodinia"}
	rows := make([]Table2Row, 0, 5)
	var tot Table2Row
	tot.Suite = "total"
	for _, su := range suites {
		var r Table2Row
		r.Suite = su
		for _, e := range Census() {
			if e.Suite != su {
				continue
			}
			r.Num++
			if e.PCComm {
				r.PCComm++
			}
			if e.PipeParal {
				r.PipeParal++
			}
			if e.Regular {
				r.Regular++
			}
			if e.Irregular {
				r.Irreg++
			}
			if e.SWQueue {
				r.SWQue++
			}
		}
		tot.Num += r.Num
		tot.PCComm += r.PCComm
		tot.PipeParal += r.PipeParal
		tot.Regular += r.Regular
		tot.Irreg += r.Irreg
		tot.SWQue += r.SWQue
		rows = append(rows, r)
	}
	return append(rows, tot)
}
