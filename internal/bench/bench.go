// Package bench is the benchmark framework: the registry the suites
// register into, the run modes corresponding to the paper's benchmark
// configurations, size presets, and the runner that builds the right
// simulated system for a mode and produces an analysis report.
package bench

import (
	"fmt"
	"sort"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/device"
)

// Mode selects the benchmark organization, following the paper:
type Mode int

const (
	// ModeCopy is the unmodified discrete-GPU version with explicit
	// cudaMemcpy-style copies (the paper's baseline).
	ModeCopy Mode = iota
	// ModeLimitedCopy is the ported version with mirrored allocations
	// eliminated, run on the heterogeneous processor.
	ModeLimitedCopy
	// ModeAsyncStreams is the kernel-fission + asynchronous-streams
	// restructuring on the discrete system (Section II / V-A validation).
	ModeAsyncStreams
	// ModeParallelChunked is the chunked producer-consumer restructuring on
	// the heterogeneous processor using in-memory signals ("Parallel +
	// Cache" in Figure 3).
	ModeParallelChunked
	NumModes
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeCopy:
		return "copy"
	case ModeLimitedCopy:
		return "limited-copy"
	case ModeAsyncStreams:
		return "async-streams"
	case ModeParallelChunked:
		return "parallel-chunked"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ParseMode maps a mode's wire/CLI name back to the Mode. Every name
// String produces round-trips.
func ParseMode(s string) (Mode, error) {
	for m := Mode(0); m < NumModes; m++ {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown mode %q", s)
}

// Size selects input scale. Small keeps CI fast; Medium reproduces the
// paper's cache-pressure regime (per-stage working sets well beyond the 1MB
// GPU L2).
type Size int

const (
	SizeSmall Size = iota
	SizeMedium
)

// String names the size preset.
func (s Size) String() string {
	switch s {
	case SizeSmall:
		return "small"
	case SizeMedium:
		return "medium"
	default:
		return fmt.Sprintf("size(%d)", int(s))
	}
}

// Smaller returns the next-smaller size preset, if one exists — the
// harness's budget-exceeded degradation path retries there.
func (s Size) Smaller() (Size, bool) {
	if s == SizeMedium {
		return SizeSmall, true
	}
	return s, false
}

// ScaleN scales a base element count by the size preset.
func ScaleN(base int, size Size) int {
	if size == SizeMedium {
		return base * 4
	}
	return base
}

// ScaleSide scales a side length (2-D/3-D problems) by the size preset —
// doubling the side quadruples cells, keeping medium runs tractable while
// pushing per-stage working sets past the 1MB GPU L2 as the paper's inputs
// did.
func ScaleSide(base int, size Size) int {
	if size == SizeMedium {
		return base * 2
	}
	return base
}

// Info describes a benchmark and its Table II pipeline characteristics.
type Info struct {
	Suite string
	Name  string
	Desc  string

	// Table II flags.
	PCComm    bool // has producer-consumer pipeline interactions
	PipeParal bool // stages could run concurrently / in closer proximity
	Regular   bool // has regular P-C constructs
	Irregular bool // has irregular control/memory behaviour
	SWQueue   bool // uses software worklists

	// Extra modes beyond copy and limited-copy this implementation supports.
	ExtraModes []Mode
}

// FullName is "suite/name".
func (i Info) FullName() string { return i.Suite + "/" + i.Name }

// Modes lists every organization the benchmark supports: the two baseline
// modes every benchmark runs plus its registered extra organizations.
func (i Info) Modes() []Mode {
	return append([]Mode{ModeCopy, ModeLimitedCopy}, i.ExtraModes...)
}

// Supports reports whether the benchmark runs in the given mode.
func (i Info) Supports(m Mode) bool {
	if m == ModeCopy || m == ModeLimitedCopy {
		return true
	}
	for _, e := range i.ExtraModes {
		if e == m {
			return true
		}
	}
	return false
}

// Benchmark is one runnable workload. Run must call BeginROI/EndROI itself
// (the ROI excludes input generation, per the paper's data-location rules).
type Benchmark interface {
	Info() Info
	Run(s *device.System, mode Mode, size Size)
}

var registry = map[string]Benchmark{}

// Register adds a benchmark; the suites call this from init.
func Register(b Benchmark) {
	name := b.Info().FullName()
	if _, dup := registry[name]; dup {
		panic("bench: duplicate benchmark " + name)
	}
	registry[name] = b
}

// Get looks a benchmark up by "suite/name".
func Get(name string) (Benchmark, bool) {
	b, ok := registry[name]
	return b, ok
}

// All returns every registered benchmark sorted by full name.
func All() []Benchmark {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Benchmark, len(names))
	for i, n := range names {
		out[i] = registry[n]
	}
	return out
}

// ConfigFor returns the system configuration a mode runs on: copy-based
// modes use the discrete GPU system, copy-free modes the heterogeneous
// processor.
func ConfigFor(m Mode) config.System {
	switch m {
	case ModeCopy, ModeAsyncStreams:
		return config.DiscreteGPU()
	default:
		return config.HeteroProcessor()
	}
}

// SystemFor builds the simulated machine a mode runs on.
func SystemFor(m Mode) *device.System {
	return device.NewSystem(ConfigFor(m))
}

// Execute runs one benchmark in one mode and returns the analysis report.
func Execute(b Benchmark, mode Mode, size Size) *core.Report {
	if !b.Info().Supports(mode) {
		panic(fmt.Sprintf("bench: %s does not support %s", b.Info().FullName(), mode))
	}
	s := SystemFor(mode)
	b.Run(s, mode, size)
	start, end := s.Col.ROI()
	if end <= start {
		panic(fmt.Sprintf("bench: %s (%s) recorded no ROI", b.Info().FullName(), mode))
	}
	return s.Report(b.Info().FullName(), mode.String())
}

// ExecuteWithResult runs one benchmark and also returns the functional
// output digests it published with System.AddResult — the hook correctness
// tests use to compare organizations against each other and against
// reference implementations.
func ExecuteWithResult(b Benchmark, mode Mode, size Size) (*core.Report, []float64) {
	if !b.Info().Supports(mode) {
		panic(fmt.Sprintf("bench: %s does not support %s", b.Info().FullName(), mode))
	}
	s := SystemFor(mode)
	b.Run(s, mode, size)
	return s.Report(b.Info().FullName(), mode.String()), s.Result
}

// ExecuteOnSystem runs one benchmark on a caller-built machine — the hook
// the ablation studies use to sweep configuration knobs.
func ExecuteOnSystem(b Benchmark, s *device.System, mode Mode, size Size) *core.Report {
	if !b.Info().Supports(mode) {
		panic(fmt.Sprintf("bench: %s does not support %s", b.Info().FullName(), mode))
	}
	b.Run(s, mode, size)
	return s.Report(b.Info().FullName(), mode.String())
}

// ExecuteNamed runs a benchmark by full name.
func ExecuteNamed(name string, mode Mode, size Size) (*core.Report, error) {
	b, ok := Get(name)
	if !ok {
		return nil, fmt.Errorf("bench: unknown benchmark %q", name)
	}
	return Execute(b, mode, size), nil
}
