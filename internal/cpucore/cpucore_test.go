package cpucore

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/memory"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/vm"
)

type fixedPort struct {
	lat  sim.Tick
	hits int
}

func (p *fixedPort) Access(now sim.Tick, req memory.Request) sim.Tick {
	p.hits++
	return now + p.lat
}

func newCore(eng *sim.Engine, mem memory.Port) *Core {
	mgr := vm.New(vm.Config{PageBytes: 4096}, nil)
	mgr.MapRange(0, 1<<30)
	return &Core{
		ID:            0,
		Eng:           eng,
		Clk:           sim.NewClock(3.5e9),
		IssueWidth:    4,
		FLOPsPerCycle: 4,
		MLP:           8,
		Mem:           mem,
		VM:            mgr,
		Ctr:           stats.NewCounters(),
		LineBytes:     128,
	}
}

func runTrace(t *testing.T, tr isa.Trace, mem memory.Port) (sim.Tick, uint64) {
	t.Helper()
	eng := sim.NewEngine()
	c := newCore(eng, mem)
	var end sim.Tick
	var flops uint64
	c.RunTrace(0, stats.CPU, tr, func(e sim.Tick, f uint64) { end, flops = e, f })
	eng.Run()
	if end == 0 && len(tr) > 0 {
		t.Fatal("trace did not complete")
	}
	return end, flops
}

func TestComputeThroughput(t *testing.T) {
	// 1000 ops x 4 FLOPs at 4 FLOPs/cycle = 1000 cycles = 286us/1000.
	tr := make(isa.Trace, 1000)
	for i := range tr {
		tr[i] = isa.Op{Kind: isa.OpCompute, N: 4}
	}
	end, flops := runTrace(t, tr, &fixedPort{lat: 0})
	if flops != 4000 {
		t.Fatalf("flops = %d", flops)
	}
	want := sim.NewClock(3.5e9).Cycles(1000)
	if end != want {
		t.Fatalf("end = %d, want %d", end, want)
	}
}

func TestIndependentLoadsOverlap(t *testing.T) {
	// 8 independent loads with 100ns latency should take ~100ns total, not
	// 800ns, because MLP=8.
	tr := make(isa.Trace, 8)
	for i := range tr {
		tr[i] = isa.Op{Kind: isa.OpLoad, Addr: memory.Addr(i * 128), N: 4}
	}
	end, _ := runTrace(t, tr, &fixedPort{lat: 100 * sim.Nanosecond})
	if end > 110*sim.Nanosecond {
		t.Fatalf("independent loads serialized: %d ps", end)
	}
}

func TestDependentLoadsSerialize(t *testing.T) {
	tr := make(isa.Trace, 8)
	for i := range tr {
		tr[i] = isa.Op{Kind: isa.OpLoadDep, Addr: memory.Addr(i * 128), N: 4}
	}
	end, _ := runTrace(t, tr, &fixedPort{lat: 100 * sim.Nanosecond})
	if end < 800*sim.Nanosecond {
		t.Fatalf("dependent loads overlapped: %d ps", end)
	}
}

func TestMLPWindowLimitsOverlap(t *testing.T) {
	// 32 independent loads with MLP=8 and 100ns latency need ~4 rounds.
	tr := make(isa.Trace, 32)
	for i := range tr {
		tr[i] = isa.Op{Kind: isa.OpLoad, Addr: memory.Addr(i * 128), N: 4}
	}
	end, _ := runTrace(t, tr, &fixedPort{lat: 100 * sim.Nanosecond})
	if end < 300*sim.Nanosecond || end > 500*sim.Nanosecond {
		t.Fatalf("MLP window wrong: %d ps", end)
	}
}

func TestStoresArePosted(t *testing.T) {
	tr := make(isa.Trace, 100)
	for i := range tr {
		tr[i] = isa.Op{Kind: isa.OpStore, Addr: memory.Addr(i * 128), N: 4}
	}
	end, _ := runTrace(t, tr, &fixedPort{lat: 100 * sim.Nanosecond})
	// 100 stores at issue cost ~71ps each, no stalls.
	if end > 20*sim.Nanosecond {
		t.Fatalf("stores stalled the core: %d ps", end)
	}
}

func TestAtomicsSerialize(t *testing.T) {
	tr := make(isa.Trace, 4)
	for i := range tr {
		tr[i] = isa.Op{Kind: isa.OpAtomic, Addr: 0, N: 4}
	}
	end, _ := runTrace(t, tr, &fixedPort{lat: 100 * sim.Nanosecond})
	if end < 400*sim.Nanosecond {
		t.Fatalf("atomics overlapped: %d ps", end)
	}
}

func TestMultiLineAccessTouchesAllLines(t *testing.T) {
	p := &fixedPort{lat: 0}
	// One 512-byte load spans 4 lines.
	runTrace(t, isa.Trace{{Kind: isa.OpLoad, Addr: 0, N: 512}}, p)
	if p.hits != 4 {
		t.Fatalf("line accesses = %d, want 4", p.hits)
	}
}

func TestQuantumYielding(t *testing.T) {
	// A long compute trace must not run in a single event.
	tr := make(isa.Trace, 100000)
	for i := range tr {
		tr[i] = isa.Op{Kind: isa.OpCompute, N: 4}
	}
	eng := sim.NewEngine()
	c := newCore(eng, &fixedPort{})
	doneRan := false
	c.RunTrace(0, stats.CPU, tr, func(sim.Tick, uint64) { doneRan = true })
	eng.Run()
	if !doneRan {
		t.Fatal("trace incomplete")
	}
	if eng.EventsRun() < 10 {
		t.Fatalf("quantum yielding not happening: %d events", eng.EventsRun())
	}
}

func TestEmptyTrace(t *testing.T) {
	eng := sim.NewEngine()
	c := newCore(eng, &fixedPort{})
	var end sim.Tick = -1
	c.RunTrace(42, stats.CPU, nil, func(e sim.Tick, f uint64) { end = e })
	eng.Run()
	if end != 42 {
		t.Fatalf("empty trace end = %d, want 42", end)
	}
}
