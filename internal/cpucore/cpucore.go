// Package cpucore is the trace-driven CPU timing model: a 4-wide
// out-of-order core approximated by an issue-bandwidth cursor plus a bounded
// window of overlapped outstanding misses (MLP). The model is deliberately
// latency-sensitive — the paper's CPU-side results hinge on CPU progress
// stalling behind off-chip reads after copies invalidate its caches.
package cpucore

import (
	"container/heap"

	"fmt"

	"repro/internal/isa"
	"repro/internal/memory"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vm"
)

// quantum bounds how far ahead of global simulated time one task replays
// before yielding, keeping resource contention with concurrently executing
// components honest.
const quantum = 100 * sim.Nanosecond

// Core models one CPU core. A core executes one task trace at a time; the
// device layer's scheduler enforces that.
type Core struct {
	ID            int
	Eng           *sim.Engine
	Clk           sim.Clock
	IssueWidth    int
	FLOPsPerCycle int
	MLP           int
	Mem           memory.Port // the core's L1D
	SrcID         int
	VM            *vm.Manager
	Ctr           *stats.Counters
	LineBytes     int
	Tr            *trace.Recorder // optional trace sink (nil-safe)
}

type tickHeap []sim.Tick

func (h tickHeap) Len() int           { return len(h) }
func (h tickHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h tickHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *tickHeap) Push(x any)        { *h = append(*h, x.(sim.Tick)) }
func (h *tickHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

type run struct {
	c     *Core
	tr    isa.Trace
	comp  stats.Component
	idx   int
	start sim.Tick
	t     sim.Tick
	out   tickHeap // outstanding load completions
	flops uint64
	done  func(end sim.Tick, flops uint64)
}

// RunTrace replays tr starting at start and calls done with the completion
// time and FLOPs executed. Replay is event-driven in quantum slices so that
// concurrent components contend for memory honestly.
func (c *Core) RunTrace(start sim.Tick, comp stats.Component, tr isa.Trace, done func(end sim.Tick, flops uint64)) {
	r := &run{c: c, tr: tr, comp: comp, start: start, t: start, done: done}
	c.Eng.At(start, r.step)
}

func (r *run) step() {
	c := r.c
	issueCost := c.Clk.Period() / sim.Tick(c.IssueWidth)
	if issueCost < 1 {
		issueCost = 1
	}
	limit := r.t + quantum

	for r.idx < len(r.tr) && r.t < limit {
		op := r.tr[r.idx]
		r.idx++
		switch op.Kind {
		case isa.OpCompute:
			r.flops += uint64(op.N)
			r.t += c.Clk.CyclesF(float64(op.N) / float64(c.FLOPsPerCycle))
		case isa.OpScratch, isa.OpSync:
			r.t += issueCost
		case isa.OpStore:
			ready := c.VM.Translate(r.t, op.Addr, false)
			r.access(ready, op, true)
			r.t = maxTick(r.t, ready) + issueCost
		case isa.OpLoad, isa.OpLoadDep, isa.OpAtomic:
			ready := c.VM.Translate(r.t, op.Addr, false)
			at := maxTick(r.t, ready)
			doneAt := r.access(at, op, op.Kind == isa.OpAtomic)
			if op.Kind == isa.OpLoad {
				// Overlap in the MLP window; stall only when it fills.
				heap.Push(&r.out, doneAt)
				if r.out.Len() > c.MLP {
					earliest := heap.Pop(&r.out).(sim.Tick)
					r.t = maxTick(r.t, earliest)
				}
				r.t += issueCost
			} else {
				// Dependent load or atomic: serializes.
				r.t = doneAt + issueCost
			}
		}
	}

	if r.idx < len(r.tr) {
		c.Eng.At(r.t, r.step)
		return
	}
	end := r.t
	for _, o := range r.out {
		end = maxTick(end, o)
	}
	c.Ctr.Add("cpu.flops", r.flops)
	c.Ctr.Add("cpu.trace_ops", uint64(len(r.tr)))
	c.Tr.Span(r.comp, fmt.Sprintf("CPU core %d", c.ID), "task", "task trace", r.start, end,
		trace.Arg{Key: "flops", Val: r.flops}, trace.Arg{Key: "ops", Val: len(r.tr)})
	r.done(end, r.flops)
}

// access issues the op's line accesses and returns the last completion time.
func (r *run) access(at sim.Tick, op isa.Op, write bool) sim.Tick {
	c := r.c
	n := memory.LinesSpanned(op.Addr, int(op.N), c.LineBytes)
	var last sim.Tick = at
	for i := 0; i < n; i++ {
		addr := memory.LineAddr(op.Addr, c.LineBytes) + memory.Addr(i*c.LineBytes)
		done := c.Mem.Access(at, memory.Request{Addr: addr, Write: write, Comp: r.comp, SrcID: c.SrcID})
		last = maxTick(last, done)
	}
	return last
}

func maxTick(a, b sim.Tick) sim.Tick {
	if a > b {
		return a
	}
	return b
}
