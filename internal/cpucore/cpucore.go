// Package cpucore is the trace-driven CPU timing model: a 4-wide
// out-of-order core approximated by an issue-bandwidth cursor plus a bounded
// window of overlapped outstanding misses (MLP). The model is deliberately
// latency-sensitive — the paper's CPU-side results hinge on CPU progress
// stalling behind off-chip reads after copies invalidate its caches.
package cpucore

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/memory"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vm"
)

// quantum bounds how far ahead of global simulated time one task replays
// before yielding, keeping resource contention with concurrently executing
// components honest.
const quantum = 100 * sim.Nanosecond

// Core models one CPU core. A core executes one task trace at a time; the
// device layer's scheduler enforces that.
type Core struct {
	ID            int
	Eng           *sim.Engine
	Clk           sim.Clock
	IssueWidth    int
	FLOPsPerCycle int
	MLP           int
	Mem           memory.Port // the core's L1D
	SrcID         int
	VM            *vm.Manager
	Ctr           *stats.Counters
	LineBytes     int
	Tr            *trace.Recorder // optional trace sink (nil-safe)

	// Interned counter handles. Core is built by struct literal (no
	// constructor), so they resolve lazily on the first RunTrace.
	cFLOPs, cTraceOps stats.Counter
}

// tickHeap is a concrete min-heap of completion times for the MLP window.
// Typed push/pop avoid the per-load interface boxing that container/heap's
// Push(x any) would allocate.
type tickHeap struct {
	a []sim.Tick
}

func (h *tickHeap) len() int { return len(h.a) }

func (h *tickHeap) push(v sim.Tick) {
	h.a = append(h.a, v)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p] <= h.a[i] {
			break
		}
		h.a[i], h.a[p] = h.a[p], h.a[i]
		i = p
	}
}

func (h *tickHeap) pop() sim.Tick {
	top := h.a[0]
	n := len(h.a) - 1
	h.a[0] = h.a[n]
	h.a = h.a[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && h.a[c+1] < h.a[c] {
			c++
		}
		if h.a[i] <= h.a[c] {
			break
		}
		h.a[i], h.a[c] = h.a[c], h.a[i]
		i = c
	}
	return top
}

type run struct {
	c     *Core
	tr    isa.Trace
	comp  stats.Component
	idx   int
	start sim.Tick
	t     sim.Tick
	out   tickHeap // outstanding load completions
	flops uint64
	done  func(end sim.Tick, flops uint64)
}

// RunTrace replays tr starting at start and calls done with the completion
// time and FLOPs executed. Replay is event-driven in quantum slices so that
// concurrent components contend for memory honestly.
func (c *Core) RunTrace(start sim.Tick, comp stats.Component, tr isa.Trace, done func(end sim.Tick, flops uint64)) {
	if !c.cFLOPs.Valid() {
		c.cFLOPs = c.Ctr.Handle("cpu.flops")
		c.cTraceOps = c.Ctr.Handle("cpu.trace_ops")
	}
	r := &run{c: c, tr: tr, comp: comp, start: start, t: start, done: done}
	c.Eng.AtD(sim.DomainCPU, start, r.step)
}

func (r *run) step() {
	c := r.c
	issueCost := c.Clk.Period() / sim.Tick(c.IssueWidth)
	if issueCost < 1 {
		issueCost = 1
	}
	limit := r.t + quantum

	for r.idx < len(r.tr) && r.t < limit {
		op := r.tr[r.idx]
		r.idx++
		switch op.Kind {
		case isa.OpCompute:
			r.flops += uint64(op.N)
			r.t += c.Clk.CyclesF(float64(op.N) / float64(c.FLOPsPerCycle))
		case isa.OpScratch, isa.OpSync:
			r.t += issueCost
		case isa.OpStore:
			ready := c.VM.Translate(r.t, op.Addr, false)
			r.access(ready, op, true)
			r.t = maxTick(r.t, ready) + issueCost
		case isa.OpLoad, isa.OpLoadDep, isa.OpAtomic:
			ready := c.VM.Translate(r.t, op.Addr, false)
			at := maxTick(r.t, ready)
			doneAt := r.access(at, op, op.Kind == isa.OpAtomic)
			if op.Kind == isa.OpLoad {
				// Overlap in the MLP window; stall only when it fills.
				r.out.push(doneAt)
				if r.out.len() > c.MLP {
					earliest := r.out.pop()
					r.t = maxTick(r.t, earliest)
				}
				r.t += issueCost
			} else {
				// Dependent load or atomic: serializes.
				r.t = doneAt + issueCost
			}
		}
	}

	if r.idx < len(r.tr) {
		c.Eng.AtD(sim.DomainCPU, r.t, r.step)
		return
	}
	end := r.t
	for _, o := range r.out.a {
		end = maxTick(end, o)
	}
	c.cFLOPs.Add(r.flops)
	c.cTraceOps.Add(uint64(len(r.tr)))
	c.Tr.Span(r.comp, fmt.Sprintf("CPU core %d", c.ID), "task", "task trace", r.start, end,
		trace.Arg{Key: "flops", Val: r.flops}, trace.Arg{Key: "ops", Val: len(r.tr)})
	r.done(end, r.flops)
}

// access issues the op's line accesses and returns the last completion time.
func (r *run) access(at sim.Tick, op isa.Op, write bool) sim.Tick {
	c := r.c
	n := memory.LinesSpanned(op.Addr, int(op.N), c.LineBytes)
	var last sim.Tick = at
	for i := 0; i < n; i++ {
		addr := memory.LineAddr(op.Addr, c.LineBytes) + memory.Addr(i*c.LineBytes)
		done := c.Mem.Access(at, memory.Request{Addr: addr, Write: write, Comp: r.comp, SrcID: c.SrcID})
		last = maxTick(last, done)
	}
	return last
}

func maxTick(a, b sim.Tick) sim.Tick {
	if a > b {
		return a
	}
	return b
}
