// Package gpucore is the trace-driven GPU timing model: 16 Fermi-like SMs,
// each running up to 8 CTAs / 48 warps of 32 lanes, with per-warp SIMT
// replay, address coalescing into 128B transactions, stall-on-use memory
// behaviour (latency hidden across warps), CTA-wide barriers, and
// greedy-then-oldest-approximating issue arbitration via a per-SM issue
// port.
//
// Lane traces are generated lazily per CTA by the device layer (CUDA
// semantics make CTAs order-independent), so peak trace memory is bounded by
// the resident CTA set rather than the whole grid.
package gpucore

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/memory"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vm"
)

// quantum bounds how far a warp replays ahead of global time in one event.
const quantum = 100 * sim.Nanosecond

// Kernel describes one launched grid for the timing model.
type Kernel struct {
	Name         string
	CTAs         int
	ThreadsPerTA int // threads per CTA (block size)
	ScratchBytes int // scratch per CTA
	// Gen lazily produces the lane traces for CTA cta (ThreadsPerTA traces).
	Gen func(cta int) []isa.Trace
	// GenPar, when set and the GPU has a parallel engine, generates CTA
	// traces on the engine's generation worker instead of Gen on the timing
	// thread. It must be safe to run off-thread (it may not touch the
	// engine or collector) and must produce exactly what Gen would.
	GenPar func(cta int) []isa.Trace
	// PreTouch, when set, replays a generated CTA's footprint touches into
	// the run's per-worker footprint shard on a pre-processing worker.
	PreTouch func(worker int, traces []isa.Trace)
	// Done fires when the last CTA completes. flops is the total FLOPs the
	// kernel executed.
	Done func(end sim.Tick, flops uint64)

	// stream delivers pipelined CTA generation results in CTA order when
	// the kernel was launched with a parallel engine active; nil runs Gen
	// synchronously in startCTA (the serial path).
	stream *sim.Stream

	remaining int // CTAs not yet dispatched
	live      int // CTAs resident on SMs
	nextCTA   int // next global CTA index to dispatch
	flops     uint64
	lastEnd   sim.Tick

	// Persistent-kernel state: an open kernel holds its queue slot and
	// accepts CTA batches via Feed until ClosePersistent.
	open    bool
	batches []*ctaBatch
}

// ctaBatch is one Feed's worth of CTAs in a persistent kernel: the grid is
// grown batch-by-batch while the kernel stays resident, so per-chunk work
// costs one queue append instead of a full launch.
type ctaBatch struct {
	start, end int // global CTA index range [start, end)
	remaining  int // batch CTAs not yet dispatched
	live       int // batch CTAs resident on SMs
	flops      uint64
	lastEnd    sim.Tick
	done       func(end sim.Tick, flops uint64)
}

// totalFlops sums kernel-level and per-batch FLOP accumulators. Normal
// kernels have no batches, so this is exactly k.flops for them.
func (k *Kernel) totalFlops() uint64 {
	f := k.flops
	for _, b := range k.batches {
		f += b.flops
	}
	return f
}

// GPU is the whole device: SMs sharing an L2 through their L1s.
type GPU struct {
	Eng *sim.Engine
	Clk sim.Clock
	Cfg config.GPUConfig
	VM  *vm.Manager
	Ctr *stats.Counters
	// L1s[i] is SM i's private L1 (write-through no-allocate for stores).
	L1s       []*memory.Cache
	LineBytes int

	// Tr is the optional trace sink (nil-safe). Per-CTA spans are capped
	// device-wide: big grids run tens of thousands of CTAs, and the first
	// few thousand already show the occupancy shape.
	Tr     *trace.Recorder
	trCTAs int

	sms    []*sm
	queue  []*Kernel // FIFO of kernels with undispatched CTAs
	warpsz int

	// Par, when non-nil, pipelines CTA trace generation (and, with pre
	// workers, footprint replay + coalescing plans) ahead of the timing
	// clock. parOK drops to false — permanently, for the rest of the run —
	// at the first persistent-kernel launch, whose batch-by-batch dispatch
	// order is timing-dependent and would break the generation-order
	// guarantee for kernels launched after it.
	Par   *sim.ParEngine
	parOK bool

	// Interned counter handles, resolved once in New — warp replay is the
	// simulator's hottest loop and must not hash counter names.
	cCTAs, cFLOPs, cScratchOps         stats.Counter
	cMemTransactions, cAtomics, cWarps stats.Counter
}

// maxCTASpans bounds per-CTA trace spans across the device.
const maxCTASpans = 2048

type sm struct {
	g         *GPU
	id        int
	issue     sim.BusyModel
	liveCTAs  int
	liveWarps int
	scratch   int
	// freeWarps pools retired warp structs for reuse, keeping their lanes
	// and coalescing buffers' capacity and their bound step closure.
	freeWarps []*warp
}

// takeWarp pops a pooled warp or builds a fresh one. The step closure is
// created once per warp object and rides along through reuse.
func (s *sm) takeWarp(cs *ctaState, now sim.Tick) *warp {
	if n := len(s.freeWarps); n > 0 {
		wp := s.freeWarps[n-1]
		s.freeWarps = s.freeWarps[:n-1]
		wp.cta = cs
		wp.t = now
		wp.ended = false
		wp.lanes = wp.lanes[:0]
		wp.plan = nil
		wp.planInst = 0
		wp.planOff = 0
		return wp
	}
	wp := &warp{sm: s, cta: cs, t: now}
	wp.stepFn = wp.step
	return wp
}

// New builds a GPU. l1s must have Cfg.SMs entries.
func New(eng *sim.Engine, cfg config.GPUConfig, l1s []*memory.Cache, vmgr *vm.Manager, lineBytes int, ctr *stats.Counters) *GPU {
	if len(l1s) != cfg.SMs {
		panic("gpucore: need one L1 per SM")
	}
	if ctr == nil {
		ctr = stats.NewCounters()
	}
	g := &GPU{
		Eng:       eng,
		Clk:       sim.NewClock(cfg.ClockHz),
		Cfg:       cfg,
		VM:        vmgr,
		Ctr:       ctr,
		L1s:       l1s,
		LineBytes: lineBytes,
		warpsz:    cfg.WarpSize,
	}
	g.cCTAs = ctr.Handle("gpu.ctas")
	g.cFLOPs = ctr.Handle("gpu.flops")
	g.cScratchOps = ctr.Handle("gpu.scratch_ops")
	g.cMemTransactions = ctr.Handle("gpu.mem_transactions")
	g.cAtomics = ctr.Handle("gpu.atomics")
	g.cWarps = ctr.Handle("gpu.warps_retired")
	for i := 0; i < cfg.SMs; i++ {
		g.sms = append(g.sms, &sm{g: g, id: i})
	}
	return g
}

// UsePar attaches a parallel engine: kernels launched from now on pipeline
// their CTA trace generation through it. Call before any launches.
func (g *GPU) UsePar(p *sim.ParEngine) {
	g.Par = p
	g.parOK = p != nil
}

// Launch enqueues a kernel to start at time at. Multiple in-flight kernels
// share the CTA dispatch queue FIFO, so a later kernel's CTAs backfill SMs
// as an earlier kernel drains.
func (g *GPU) Launch(at sim.Tick, k *Kernel) {
	if k.CTAs <= 0 || k.ThreadsPerTA <= 0 {
		panic("gpucore: kernel needs at least one CTA and one thread")
	}
	k.remaining = k.CTAs
	k.nextCTA = 0
	g.Eng.AtD(sim.DomainGPU, at, func() {
		g.Tr.Instant(stats.GPU, "GPU dispatch", "kernel", "kernel queued: "+k.Name, g.Eng.Now(),
			trace.Arg{Key: "ctas", Val: k.CTAs}, trace.Arg{Key: "block", Val: k.ThreadsPerTA})
		if g.parOK {
			g.pipeline(k)
		}
		g.queue = append(g.queue, k)
		g.dispatch()
	})
}

// pipeline submits kernel k's CTA generation to the parallel engine at its
// launch event. Launch events execute in engine order and the generation
// worker drains submissions FIFO, so across every kernel the off-thread
// generation order equals the order serial dispatch would have called Gen
// in (dispatch drains the queue head first: all of an earlier kernel's
// CTAs, in increasing index order, generate before a later kernel's
// first). With pre workers, each generated CTA is then pre-processed —
// footprint replay into a worker shard plus a coalescing plan — before the
// timing thread consumes it in startCTA.
func (g *GPU) pipeline(k *Kernel) {
	gen := k.GenPar
	if gen == nil {
		gen = k.Gen
	}
	genFn := func(i int) any { return gen(i) }
	if g.Par.PreWorkers() == 0 {
		k.stream = g.Par.Pipeline(k.CTAs, genFn, nil)
		return
	}
	touch := k.PreTouch
	warpsz, lineBytes := g.warpsz, g.LineBytes
	k.stream = g.Par.Pipeline(k.CTAs, genFn, func(worker, i int, v any) any {
		traces := v.([]isa.Trace)
		if touch != nil {
			touch(worker, traces)
		}
		return &ctaOut{traces: traces, plan: buildCTAPlan(traces, warpsz, lineBytes)}
	})
}

// LaunchPersistent enqueues an open (persistent) kernel at time at. The
// kernel starts with zero CTAs and holds its FIFO slot: Feed grows the grid
// batch-by-batch while the kernel stays resident, and ClosePersistent
// retires it. Done fires once — after close, when the last fed CTA drains —
// with the total FLOPs across all batches, amortizing the launch over every
// chunk the way a real persistent kernel amortizes its dispatch.
func (g *GPU) LaunchPersistent(at sim.Tick, k *Kernel) {
	if k.ThreadsPerTA <= 0 {
		panic("gpucore: kernel needs at least one thread")
	}
	k.open = true
	k.CTAs = 0
	k.remaining = 0
	k.nextCTA = 0
	g.Eng.AtD(sim.DomainGPU, at, func() {
		if g.parOK {
			// A persistent kernel's CTAs generate at Feed-driven dispatch
			// times, so generation order past this point is timing-dependent:
			// stop pipelining new launches. Kernels already pipelined keep
			// their streams — their generation was ordered before this event.
			g.parOK = false
			sim.RecordSerialFallback(sim.FallbackPersistentKernel)
		}
		g.Tr.Instant(stats.GPU, "GPU dispatch", "kernel", "persistent kernel opened: "+k.Name, g.Eng.Now(),
			trace.Arg{Key: "block", Val: k.ThreadsPerTA})
		g.queue = append(g.queue, k)
	})
}

// Feed appends a batch of ctas CTAs to an open persistent kernel at time
// at. done (optional) fires when this batch's last CTA completes, with the
// batch's FLOPs — the per-chunk completion signal.
func (g *GPU) Feed(at sim.Tick, k *Kernel, ctas int, done func(end sim.Tick, flops uint64)) {
	if ctas <= 0 {
		panic("gpucore: feed needs at least one CTA")
	}
	g.Eng.AtD(sim.DomainGPU, at, func() {
		if !k.open {
			panic("gpucore: Feed on closed kernel " + k.Name)
		}
		b := &ctaBatch{start: k.CTAs, end: k.CTAs + ctas, remaining: ctas, done: done}
		k.batches = append(k.batches, b)
		k.CTAs += ctas
		k.remaining += ctas
		g.Tr.Instant(stats.GPU, "GPU dispatch", "kernel", "batch fed: "+k.Name, g.Eng.Now(),
			trace.Arg{Key: "ctas", Val: ctas})
		g.dispatch()
	})
}

// ClosePersistent stops an open kernel accepting batches at time at. If the
// kernel has already drained, Done fires immediately (at the close time —
// the resident kernel exits when it observes the stop flag); otherwise it
// fires when the last CTA completes.
func (g *GPU) ClosePersistent(at sim.Tick, k *Kernel) {
	g.Eng.AtD(sim.DomainGPU, at, func() {
		if !k.open {
			return
		}
		k.open = false
		if k.remaining == 0 && k.live == 0 {
			now := g.Eng.Now()
			if k.lastEnd < now {
				k.lastEnd = now
			}
			if k.Done != nil {
				k.Done(k.lastEnd, k.totalFlops())
			}
			g.dispatch() // unpark the queue slot the closed kernel held
		}
	})
}

// warpsNeeded reports warps per CTA for kernel k.
func (g *GPU) warpsNeeded(k *Kernel) int {
	return (k.ThreadsPerTA + g.warpsz - 1) / g.warpsz
}

// dispatch fills SMs with CTAs from the queue head. A drained normal (or
// closed persistent) kernel is removed; an open persistent kernel with no
// pending CTAs parks in place — it keeps its slot but does not head-block
// later kernels while waiting for its next Feed.
func (g *GPU) dispatch() {
	qi := 0
	for qi < len(g.queue) {
		k := g.queue[qi]
		if k.remaining == 0 {
			if k.open {
				qi++ // parked: open persistent kernel awaiting a Feed
				continue
			}
			g.queue = append(g.queue[:qi], g.queue[qi+1:]...)
			continue
		}
		placed := false
		for _, s := range g.sms {
			if k.remaining == 0 {
				break
			}
			if s.canTake(k) {
				s.startCTA(k, k.nextCTA)
				k.nextCTA++
				k.remaining--
				k.live++
				placed = true
			}
		}
		if !placed {
			return // all SMs full; retry when a CTA finishes
		}
	}
}

func (s *sm) canTake(k *Kernel) bool {
	w := s.g.warpsNeeded(k)
	return s.liveCTAs < s.g.Cfg.MaxCTAsPerSM &&
		s.liveWarps+w <= s.g.Cfg.MaxWarpsPerSM &&
		s.scratch+k.ScratchBytes <= s.g.Cfg.ScratchBytesPkSM
}

// ctaState tracks one resident CTA, including its barrier.
type ctaState struct {
	sm        *sm
	k         *Kernel
	b         *ctaBatch // owning feed batch (persistent kernels only)
	fl        *uint64   // flops accumulator: &k.flops or &b.flops
	idx       int       // CTA index within the grid
	start     sim.Tick  // residency start, for the trace span
	liveWarps int
	// barrier state
	arrived int
	maxT    sim.Tick
	waiting []*warp
}

func (s *sm) startCTA(k *Kernel, ctaIdx int) {
	now := s.g.Eng.Now()
	var traces []isa.Trace
	var plan *ctaPlan
	if k.stream != nil {
		// Pipelined kernel: CTAs dispatch in increasing index order (the
		// order the pump generated them in), so the stream's next result is
		// exactly this CTA's.
		switch v := k.stream.Next().(type) {
		case *ctaOut:
			traces, plan = v.traces, v.plan
		case []isa.Trace:
			traces = v
		}
	} else {
		traces = k.Gen(ctaIdx)
	}
	if len(traces) != k.ThreadsPerTA {
		panic("gpucore: Gen returned wrong lane count for kernel " + k.Name)
	}
	w := s.g.warpsNeeded(k)
	cs := &ctaState{sm: s, k: k, fl: &k.flops, idx: ctaIdx, start: now, liveWarps: w}
	for _, b := range k.batches {
		if ctaIdx >= b.start && ctaIdx < b.end {
			cs.b = b
			cs.fl = &b.flops
			b.remaining--
			b.live++
			break
		}
	}
	s.liveCTAs++
	s.liveWarps += w
	s.scratch += k.ScratchBytes
	s.g.cCTAs.Inc()
	for wi := 0; wi < w; wi++ {
		lo := wi * s.g.warpsz
		hi := lo + s.g.warpsz
		if hi > len(traces) {
			hi = len(traces)
		}
		wp := s.takeWarp(cs, now)
		if plan != nil {
			wp.plan = &plan.warps[wi]
		}
		for _, tr := range traces[lo:hi] {
			wp.lanes = append(wp.lanes, laneCursor{tr: tr})
		}
		s.g.Eng.AtD(sim.DomainGPU, now, wp.stepFn)
	}
}

func (cs *ctaState) warpDone(end sim.Tick) {
	s := cs.sm
	cs.liveWarps--
	s.liveWarps--
	if cs.liveWarps > 0 {
		// If the remaining live warps are all parked at the barrier, a
		// retired warp must not keep them waiting (tolerates traces whose
		// sync counts differ across warps).
		cs.tryRelease()
		return
	}
	// CTA complete: release resources, backfill, maybe finish the kernel.
	cs.traceCTA(end)
	s.liveCTAs--
	s.scratch -= cs.k.ScratchBytes
	cs.k.live--
	if end > cs.k.lastEnd {
		cs.k.lastEnd = end
	}
	if b := cs.b; b != nil {
		b.live--
		if end > b.lastEnd {
			b.lastEnd = end
		}
		if b.remaining == 0 && b.live == 0 && b.done != nil {
			done := b.done
			b.done = nil
			done(b.lastEnd, b.flops)
		}
	}
	k := cs.k
	if !k.open && k.remaining == 0 && k.live == 0 {
		if k.Done != nil {
			k.Done(k.lastEnd, k.totalFlops())
		}
	}
	s.g.dispatch()
}

// traceCTA records the CTA's SM-residency span, up to the device-wide cap.
func (cs *ctaState) traceCTA(end sim.Tick) {
	g := cs.sm.g
	if !g.Tr.Enabled() || g.trCTAs > maxCTASpans {
		return
	}
	g.trCTAs++
	if g.trCTAs > maxCTASpans {
		g.Tr.Instant(stats.GPU, fmt.Sprintf("SM%d", cs.sm.id), "cta", "cta spans capped", end,
			trace.Arg{Key: "cap", Val: maxCTASpans})
		return
	}
	g.Tr.Span(stats.GPU, fmt.Sprintf("SM%d", cs.sm.id), "cta",
		fmt.Sprintf("%s cta %d", cs.k.Name, cs.idx), cs.start, end)
}

type laneCursor struct {
	tr  isa.Trace
	idx int
}

func (lc *laneCursor) done() bool { return lc.idx >= len(lc.tr) }

type warp struct {
	sm    *sm
	cta   *ctaState
	lanes []laneCursor
	t     sim.Tick
	ended bool
	// stepFn is w.step bound once at construction; scheduling it avoids a
	// method-value closure allocation on every suspend/resume.
	stepFn func()
	// lineBuf is the reused coalescing scratch buffer: memoryOp gathers the
	// op's unique lines into it instead of allocating a fresh slice per
	// memory instruction.
	lineBuf []memory.Addr
	// plan, when non-nil, is this warp's precomputed coalesced line lists
	// (built off-thread by a pre worker); planInst/planOff cursor through
	// it in memory-op issue order.
	plan     *warpPlan
	planInst int
	planOff  int
}

// step replays warp instructions until it blocks on memory, hits a barrier,
// exhausts its quantum, or finishes.
func (w *warp) step() {
	g := w.sm.g
	limit := w.t + quantum

	for w.t < limit {
		// SIMT merge: the lowest-numbered unfinished lane leads; every
		// unfinished lane whose next op matches its kind participates.
		// Divergent lanes wait for a later slot — branch serialization.
		lead := -1
		for i := range w.lanes {
			if !w.lanes[i].done() {
				lead = i
				break
			}
		}
		if lead < 0 {
			w.finish()
			return
		}
		kind := w.lanes[lead].tr[w.lanes[lead].idx].Kind

		switch kind {
		case isa.OpSync:
			// All unfinished lanes must be at the barrier in well-formed
			// code; advance every lane currently at a sync.
			for i := range w.lanes {
				lc := &w.lanes[i]
				if !lc.done() && lc.tr[lc.idx].Kind == isa.OpSync {
					lc.idx++
				}
			}
			if w.barrier() {
				return // suspended until the last warp arrives
			}
			continue

		case isa.OpCompute:
			var maxN uint32
			var sum uint64
			for i := range w.lanes {
				lc := &w.lanes[i]
				if !lc.done() && lc.tr[lc.idx].Kind == isa.OpCompute {
					n := lc.tr[lc.idx].N
					if n > maxN {
						maxN = n
					}
					sum += uint64(n)
					lc.idx++
				}
			}
			cyc := int64(maxN)
			if cyc < 1 {
				cyc = 1
			}
			start := w.sm.issue.Claim(w.t, g.Clk.Cycles(cyc))
			w.t = start + g.Clk.Cycles(cyc)
			*w.cta.fl += sum
			g.cFLOPs.Add(sum)

		case isa.OpScratch:
			for i := range w.lanes {
				lc := &w.lanes[i]
				if !lc.done() && lc.tr[lc.idx].Kind == isa.OpScratch {
					lc.idx++
				}
			}
			start := w.sm.issue.Claim(w.t, g.Clk.Cycles(1))
			w.t = start + g.Clk.Cycles(1)
			g.cScratchOps.Inc()

		case isa.OpLoad, isa.OpLoadDep, isa.OpStore, isa.OpAtomic:
			blocked := w.memoryOp(kind)
			if blocked {
				return // rescheduled at completion time
			}
		}
	}
	g.Eng.AtD(sim.DomainGPU, w.t, w.stepFn)
}

// ctaOut is a pre worker's product for one CTA: its lane traces plus the
// precomputed coalescing plan for its warps.
type ctaOut struct {
	traces []isa.Trace
	plan   *ctaPlan
}

// ctaPlan holds per-warp coalescing plans for one CTA.
type ctaPlan struct {
	warps []warpPlan
}

// warpPlan is one warp's memory ops flattened in issue order: counts[j]
// lines for the j-th memory op, stored contiguously in lines.
type warpPlan struct {
	lines  []memory.Addr
	counts []int32
}

// buildCTAPlan precomputes each warp's coalesced line lists by replaying
// step()'s SIMT sequencing over the traces. Which ops issue, in what
// per-warp order, with which participant lanes is a pure function of the
// trace contents — timing decides only when — so a plan built off-thread
// matches the live replay exactly. Sync, compute, and scratch ops advance
// lanes without producing lines; memory ops run the same coalesce body
// memoryOp would.
func buildCTAPlan(traces []isa.Trace, warpsz, lineBytes int) *ctaPlan {
	nw := (len(traces) + warpsz - 1) / warpsz
	plan := &ctaPlan{warps: make([]warpPlan, nw)}
	var lanes []laneCursor
	for wi := 0; wi < nw; wi++ {
		lo := wi * warpsz
		hi := lo + warpsz
		if hi > len(traces) {
			hi = len(traces)
		}
		lanes = lanes[:0]
		for _, tr := range traces[lo:hi] {
			lanes = append(lanes, laneCursor{tr: tr})
		}
		wp := &plan.warps[wi]
		for {
			lead := -1
			for i := range lanes {
				if !lanes[i].done() {
					lead = i
					break
				}
			}
			if lead < 0 {
				break
			}
			kind := lanes[lead].tr[lanes[lead].idx].Kind
			switch kind {
			case isa.OpSync, isa.OpCompute, isa.OpScratch:
				advanceLanes(lanes, kind)
			default:
				base := len(wp.lines)
				wp.lines = coalesce(wp.lines, lanes, kind, lineBytes)
				wp.counts = append(wp.counts, int32(len(wp.lines)-base))
			}
		}
	}
	return plan
}

// coalesce advances every lane whose next op matches kind and appends that
// op's unique line addresses to buf (deduplicated against buf's tail from
// base on, i.e. within this op only), returning the extended buffer. It is
// the single implementation of address coalescing, shared by the live
// memoryOp path and the off-thread plan builder — one body, so the two can
// never disagree on which transactions an op produces.
func coalesce(buf []memory.Addr, lanes []laneCursor, kind isa.OpKind, lineBytes int) []memory.Addr {
	base := len(buf)
	for i := range lanes {
		lc := &lanes[i]
		if lc.done() || lc.tr[lc.idx].Kind != kind {
			continue
		}
		op := lc.tr[lc.idx]
		lc.idx++
		n := memory.LinesSpanned(op.Addr, int(op.N), lineBytes)
		for j := 0; j < n; j++ {
			a := memory.LineAddr(op.Addr, lineBytes) + memory.Addr(j*lineBytes)
			dup := false
			for _, l := range buf[base:] {
				if l == a {
					dup = true
					break
				}
			}
			if !dup {
				buf = append(buf, a)
			}
		}
	}
	return buf
}

// advanceLanes advances every lane whose next op matches kind, without
// collecting addresses — the lane bookkeeping half of coalesce, used when a
// precomputed plan already holds the op's line list.
func advanceLanes(lanes []laneCursor, kind isa.OpKind) {
	for i := range lanes {
		lc := &lanes[i]
		if !lc.done() && lc.tr[lc.idx].Kind == kind {
			lc.idx++
		}
	}
}

// memoryOp issues a coalesced memory instruction. Loads and atomics block
// the warp until all transactions complete (stall-on-use); stores are
// posted. It reports whether the warp suspended (a resume event was
// scheduled).
func (w *warp) memoryOp(kind isa.OpKind) bool {
	g := w.sm.g
	write := kind == isa.OpStore || kind == isa.OpAtomic

	var lines []memory.Addr
	if pl := w.plan; pl != nil {
		// Precomputed path: the pre worker already coalesced this op's
		// lines; just advance the lanes and take the next plan entry.
		if w.planInst >= len(pl.counts) {
			panic("gpucore: coalescing plan diverged from replay for kernel " + w.cta.k.Name)
		}
		advanceLanes(w.lanes, kind)
		n := int(pl.counts[w.planInst])
		lines = pl.lines[w.planOff : w.planOff+n]
		w.planInst++
		w.planOff += n
	} else {
		// Gather participant addresses and coalesce into unique lines,
		// reusing the warp's scratch buffer.
		lines = coalesce(w.lineBuf[:0], w.lanes, kind, g.LineBytes)
		w.lineBuf = lines
	}
	g.cMemTransactions.Add(uint64(len(lines)))
	if kind == isa.OpAtomic {
		g.cAtomics.Inc()
	}

	l1 := g.L1s[w.sm.id]
	var worst sim.Tick
	t := w.t
	for _, a := range lines {
		start := w.sm.issue.Claim(t, g.Clk.Cycles(1))
		issueAt := start + g.Clk.Cycles(1)
		ready := g.VM.Translate(issueAt, a, true)
		done := l1.Access(ready, memory.Request{Addr: a, Write: write, Comp: stats.GPU, SrcID: gpuSrcID})
		if done > worst {
			worst = done
		}
		t = issueAt
	}

	if kind == isa.OpStore {
		w.t = t // posted
		return false
	}
	if worst <= w.t {
		w.t = t
		return false
	}
	w.t = worst
	g.Eng.AtD(sim.DomainGPU, worst, w.stepFn)
	return true
}

// barrier registers arrival; returns true if the warp suspended.
func (w *warp) barrier() bool {
	cs := w.cta
	cs.arrived++
	if w.t > cs.maxT {
		cs.maxT = w.t
	}
	if cs.arrived < cs.liveWarps {
		cs.waiting = append(cs.waiting, w)
		return true
	}
	// Last live warp to arrive: release everyone at the max arrival time.
	releaseT := cs.maxT
	waiters := cs.waiting
	cs.arrived = 0
	cs.maxT = 0
	cs.waiting = cs.waiting[:0] // re-arrivals happen in later events; reuse capacity
	for _, ww := range waiters {
		ww.t = releaseT
		w.sm.g.Eng.AtD(sim.DomainGPU, releaseT, ww.stepFn)
	}
	w.t = releaseT
	return false
}

// tryRelease frees barrier waiters when every still-live warp has arrived.
func (cs *ctaState) tryRelease() {
	if len(cs.waiting) == 0 || cs.arrived < cs.liveWarps {
		return
	}
	releaseT := cs.maxT
	waiters := cs.waiting
	cs.arrived = 0
	cs.maxT = 0
	cs.waiting = cs.waiting[:0]
	for _, ww := range waiters {
		ww.t = releaseT
		cs.sm.g.Eng.AtD(sim.DomainGPU, releaseT, ww.stepFn)
	}
}

func (w *warp) finish() {
	if w.ended {
		return
	}
	w.ended = true
	w.sm.g.cWarps.Inc()
	// Return the warp to the SM pool before warpDone: a retired warp has no
	// pending events and no barrier registration, and step() does not touch
	// the warp after finish() returns, so warpDone's dispatch chain may
	// immediately reuse it for a backfilled CTA.
	cta, t := w.cta, w.t
	w.cta = nil
	w.sm.freeWarps = append(w.sm.freeWarps, w)
	cta.warpDone(t)
}

// gpuSrcID is the Request.SrcID for the GPU cache hierarchy; the device
// layer wires fabrics with matching probe-group IDs.
const gpuSrcID = 100

// SrcID reports the GPU hierarchy's coherence source ID.
func SrcID() int { return gpuSrcID }

// BusyIssueTime sums per-SM issue-port busy time, a utilization aid.
func (g *GPU) BusyIssueTime() sim.Tick {
	var t sim.Tick
	for _, s := range g.sms {
		t += s.issue.BusyTime()
	}
	return t
}
