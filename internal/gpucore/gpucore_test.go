package gpucore

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/memory"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/vm"
)

// testRig is a small GPU with a counting sink behind per-SM L1s.
type testRig struct {
	eng  *sim.Engine
	g    *GPU
	sink *sinkPort
	vmgr *vm.Manager
}

type sinkPort struct {
	lat   sim.Tick
	reads int
	wrs   int
}

func (p *sinkPort) Access(now sim.Tick, req memory.Request) sim.Tick {
	if req.Write {
		p.wrs++
	} else {
		p.reads++
	}
	return now + p.lat
}

func newRig(t *testing.T, sms int, memLat sim.Tick) *testRig {
	t.Helper()
	eng := sim.NewEngine()
	cfg := config.GPUConfig{
		SMs: sms, ClockHz: 700e6, WarpSize: 32,
		MaxWarpsPerSM: 48, MaxCTAsPerSM: 8, ScratchBytesPkSM: 48 * 1024,
		LanesPerCycle: 32, L1Bytes: 24 * 1024, L1Assoc: 6,
	}
	sink := &sinkPort{lat: memLat}
	var l1s []*memory.Cache
	for i := 0; i < sms; i++ {
		l1s = append(l1s, memory.NewCache(memory.CacheConfig{
			Name: "l1", SizeBytes: cfg.L1Bytes, Assoc: cfg.L1Assoc, LineBytes: 128,
			Policy: memory.WriteThroughNoAlloc, HitLat: 40 * sim.Nanosecond, Next: sink, SrcID: SrcID(),
		}))
	}
	mgr := vm.New(vm.Config{PageBytes: 4096}, nil)
	mgr.MapRange(0, 1<<30)
	return &testRig{eng: eng, g: New(eng, cfg, l1s, mgr, 128, stats.NewCounters()), sink: sink, vmgr: mgr}
}

// uniform builds a Gen producing identical traces for every lane.
func uniform(threads int, mk func(lane int) isa.Trace) func(int) []isa.Trace {
	return func(cta int) []isa.Trace {
		out := make([]isa.Trace, threads)
		for i := range out {
			out[i] = mk(i)
		}
		return out
	}
}

func runKernel(t *testing.T, r *testRig, k *Kernel) (end sim.Tick, flops uint64) {
	t.Helper()
	doneRan := false
	k.Done = func(e sim.Tick, f uint64) { end, flops, doneRan = e, f, true }
	r.g.Launch(0, k)
	r.eng.Run()
	if !doneRan {
		t.Fatal("kernel never completed")
	}
	return end, flops
}

func TestKernelCompletesAndCountsFLOPs(t *testing.T) {
	r := newRig(t, 2, 100*sim.Nanosecond)
	_, flops := runKernel(t, r, &Kernel{
		Name: "k", CTAs: 4, ThreadsPerTA: 64,
		Gen: uniform(64, func(lane int) isa.Trace {
			return isa.Trace{{Kind: isa.OpCompute, N: 10}}
		}),
	})
	if flops != 4*64*10 {
		t.Fatalf("flops = %d, want %d", flops, 4*64*10)
	}
	if r.g.Ctr.Get("gpu.ctas") != 4 {
		t.Fatalf("ctas = %d", r.g.Ctr.Get("gpu.ctas"))
	}
	if r.g.Ctr.Get("gpu.warps_retired") != 8 {
		t.Fatalf("warps = %d", r.g.Ctr.Get("gpu.warps_retired"))
	}
}

func TestCoalescingUnitStride(t *testing.T) {
	r := newRig(t, 1, 0)
	// 32 lanes x 4B unit stride = exactly one 128B line = 1 transaction.
	runKernel(t, r, &Kernel{
		Name: "c", CTAs: 1, ThreadsPerTA: 32,
		Gen: uniform(32, func(lane int) isa.Trace {
			return isa.Trace{{Kind: isa.OpLoad, Addr: memory.Addr(lane * 4), N: 4}}
		}),
	})
	if got := r.g.Ctr.Get("gpu.mem_transactions"); got != 1 {
		t.Fatalf("unit-stride transactions = %d, want 1", got)
	}
}

func TestCoalescingScattered(t *testing.T) {
	r := newRig(t, 1, 0)
	// Each lane hits its own line: 32 transactions.
	runKernel(t, r, &Kernel{
		Name: "s", CTAs: 1, ThreadsPerTA: 32,
		Gen: uniform(32, func(lane int) isa.Trace {
			return isa.Trace{{Kind: isa.OpLoad, Addr: memory.Addr(lane * 128), N: 4}}
		}),
	})
	if got := r.g.Ctr.Get("gpu.mem_transactions"); got != 32 {
		t.Fatalf("scattered transactions = %d, want 32", got)
	}
}

func TestMisalignmentDoublesTransactions(t *testing.T) {
	r := newRig(t, 1, 0)
	// A 128B-misaligned unit-stride warp access straddles two lines.
	runKernel(t, r, &Kernel{
		Name: "m", CTAs: 1, ThreadsPerTA: 32,
		Gen: uniform(32, func(lane int) isa.Trace {
			return isa.Trace{{Kind: isa.OpLoad, Addr: memory.Addr(64 + lane*4), N: 4}}
		}),
	})
	if got := r.g.Ctr.Get("gpu.mem_transactions"); got != 2 {
		t.Fatalf("misaligned transactions = %d, want 2", got)
	}
}

func TestWarpsHideMemoryLatency(t *testing.T) {
	// One warp: serial round trips. Many warps: latency overlapped.
	lat := 400 * sim.Nanosecond
	mkKernel := func(ctas int) *Kernel {
		return &Kernel{
			Name: "lat", CTAs: ctas, ThreadsPerTA: 32,
			Gen: uniform(32, func(lane int) isa.Trace {
				tr := make(isa.Trace, 8)
				for i := range tr {
					// Distinct lines per lane and per iteration: all misses.
					tr[i] = isa.Op{Kind: isa.OpLoad, Addr: memory.Addr(lane*128 + i*32*128), N: 4}
				}
				return tr
			}),
		}
	}
	r1 := newRig(t, 1, lat)
	end1, _ := runKernel(t, r1, mkKernel(1))
	r8 := newRig(t, 1, lat)
	end8, _ := runKernel(t, r8, mkKernel(8))
	// 8 CTAs issue 8x the loads; with latency hiding the time should grow
	// far less than 8x.
	if end8 > end1*3 {
		t.Fatalf("no latency hiding: 1 CTA %d ps, 8 CTAs %d ps", end1, end8)
	}
}

func TestBarrierSynchronizesWarps(t *testing.T) {
	r := newRig(t, 1, 0)
	// Warp 0 (lanes 0-31) computes a long stretch before the barrier; warp 1
	// a short one. After the barrier both do one load; the load cannot issue
	// before the slow warp arrives.
	slow := int64(10000) // cycles
	runKernel(t, r, &Kernel{
		Name: "bar", CTAs: 1, ThreadsPerTA: 64,
		Gen: func(cta int) []isa.Trace {
			out := make([]isa.Trace, 64)
			for i := range out {
				n := uint32(1)
				if i < 32 {
					n = uint32(slow)
				}
				out[i] = isa.Trace{
					{Kind: isa.OpCompute, N: n},
					{Kind: isa.OpSync},
					{Kind: isa.OpLoad, Addr: memory.Addr(i * 128), N: 4},
				}
			}
			return out
		},
	})
	// The kernel end must be at least the slow warp's compute time.
	if r.eng.Now() < r.g.Clk.Cycles(slow) {
		t.Fatalf("barrier did not hold: end %d < %d", r.eng.Now(), r.g.Clk.Cycles(slow))
	}
}

func TestCTACapacityLimitsSerializeWaves(t *testing.T) {
	// 1 SM, MaxCTAs 8: 16 heavy CTAs must run in two waves.
	r := newRig(t, 1, 0)
	cycles := int64(5000)
	end16, _ := runKernel(t, r, &Kernel{
		Name: "wave", CTAs: 16, ThreadsPerTA: 32,
		Gen: uniform(32, func(lane int) isa.Trace {
			return isa.Trace{{Kind: isa.OpCompute, N: uint32(cycles)}}
		}),
	})
	// Issue port serializes compute anyway; the check is on correct
	// completion of all CTAs.
	if r.g.Ctr.Get("gpu.ctas") != 16 {
		t.Fatalf("dispatched %d CTAs", r.g.Ctr.Get("gpu.ctas"))
	}
	if end16 < r.g.Clk.Cycles(16*cycles) {
		t.Fatalf("16 compute-bound CTAs on one SM too fast: %d", end16)
	}
}

func TestScratchLimitBlocksPlacement(t *testing.T) {
	r := newRig(t, 1, 0)
	// Each CTA wants 30kB of 48kB scratch: only one resident at a time.
	end, _ := runKernel(t, r, &Kernel{
		Name: "scr", CTAs: 2, ThreadsPerTA: 32, ScratchBytes: 30 * 1024,
		Gen: uniform(32, func(lane int) isa.Trace {
			return isa.Trace{{Kind: isa.OpCompute, N: 1000}}
		}),
	})
	if end < r.g.Clk.Cycles(2000) {
		t.Fatalf("scratch limit not enforced: %d", end)
	}
}

func TestDivergentLanesSerialize(t *testing.T) {
	r := newRig(t, 1, 0)
	// Half the lanes compute 100 cycles, half load. The merge rule executes
	// them as separate slots.
	runKernel(t, r, &Kernel{
		Name: "div", CTAs: 1, ThreadsPerTA: 32,
		Gen: func(cta int) []isa.Trace {
			out := make([]isa.Trace, 32)
			for i := range out {
				if i%2 == 0 {
					out[i] = isa.Trace{{Kind: isa.OpCompute, N: 100}}
				} else {
					out[i] = isa.Trace{{Kind: isa.OpLoad, Addr: memory.Addr(i * 128), N: 4}}
				}
			}
			return out
		},
	})
	// 16 odd lanes hit distinct lines: 16 transactions, plus compute ran.
	if got := r.g.Ctr.Get("gpu.mem_transactions"); got != 16 {
		t.Fatalf("divergent transactions = %d, want 16", got)
	}
	if got := r.g.Ctr.Get("gpu.flops"); got != 16*100 {
		t.Fatalf("divergent flops = %d", got)
	}
}

func TestStoresArePosted(t *testing.T) {
	r := newRig(t, 1, 500*sim.Nanosecond)
	end, _ := runKernel(t, r, &Kernel{
		Name: "st", CTAs: 1, ThreadsPerTA: 32,
		Gen: uniform(32, func(lane int) isa.Trace {
			return isa.Trace{{Kind: isa.OpStore, Addr: memory.Addr(lane * 4), N: 4}}
		}),
	})
	if end > 100*sim.Nanosecond {
		t.Fatalf("stores stalled the warp: %d ps", end)
	}
	if r.sink.wrs == 0 {
		t.Fatal("stores never reached memory")
	}
}

func TestGPUPageFaultsDelayWarps(t *testing.T) {
	eng := sim.NewEngine()
	cfgBase := config.GPUConfig{
		SMs: 1, ClockHz: 700e6, WarpSize: 32,
		MaxWarpsPerSM: 48, MaxCTAsPerSM: 8, ScratchBytesPkSM: 48 * 1024,
		LanesPerCycle: 32, L1Bytes: 24 * 1024, L1Assoc: 6,
	}
	sink := &sinkPort{}
	l1 := memory.NewCache(memory.CacheConfig{
		Name: "l1", SizeBytes: cfgBase.L1Bytes, Assoc: cfgBase.L1Assoc, LineBytes: 128,
		Policy: memory.WriteThroughNoAlloc, HitLat: 0, Next: sink, SrcID: SrcID(),
	})
	// Hetero-style: GPU faults serviced serially by the CPU at 2us each.
	mgr := vm.New(vm.Config{PageBytes: 4096, GPUFaultToCPU: true, CPUFaultServ: 2 * sim.Microsecond}, nil)
	g := New(eng, cfgBase, []*memory.Cache{l1}, mgr, 128, stats.NewCounters())

	var end sim.Tick
	g.Launch(0, &Kernel{
		Name: "fault", CTAs: 1, ThreadsPerTA: 32,
		Gen: uniform(32, func(lane int) isa.Trace {
			// Each lane writes its own unmapped page: 32 serialized faults.
			return isa.Trace{{Kind: isa.OpStore, Addr: memory.Addr(lane * 4096), N: 4}}
		}),
		Done: func(e sim.Tick, f uint64) { end = e },
	})
	eng.Run()
	if mgr.Counters().Get("vm.gpu_faults_to_cpu") != 32 {
		t.Fatalf("faults = %d", mgr.Counters().Get("vm.gpu_faults_to_cpu"))
	}
	// Posted stores don't stall, but the *issue* of each transaction waits
	// on translation, so the handler serialization shows up in busy time.
	if mgr.HandlerBusyTime() != 64*sim.Microsecond {
		t.Fatalf("handler busy = %d", mgr.HandlerBusyTime())
	}
	_ = end
}

func TestTwoKernelsFIFO(t *testing.T) {
	r := newRig(t, 1, 0)
	var order []string
	mk := func(name string) *Kernel {
		return &Kernel{
			Name: name, CTAs: 2, ThreadsPerTA: 32,
			Gen: uniform(32, func(lane int) isa.Trace {
				return isa.Trace{{Kind: isa.OpCompute, N: 100}}
			}),
			Done: func(e sim.Tick, f uint64) { order = append(order, name) },
		}
	}
	r.g.Launch(0, mk("a"))
	r.g.Launch(0, mk("b"))
	r.eng.Run()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("kernel order = %v", order)
	}
}

func TestLaunchValidation(t *testing.T) {
	r := newRig(t, 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty kernel")
		}
	}()
	r.g.Launch(0, &Kernel{Name: "bad", CTAs: 0, ThreadsPerTA: 32})
}
