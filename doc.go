// Package repro reproduces "GPU Computing Pipeline Inefficiencies and
// Optimization Opportunities in Heterogeneous CPU-GPU Processors"
// (Hestness, Keckler, Wood — IISWC 2015) as a pure-Go system: a
// cycle-approximate discrete-event simulator of a discrete GPU system and a
// cache-coherent heterogeneous CPU-GPU processor, a CUDA-like device
// runtime, 20 benchmark re-implementations across four suites, the paper's
// pipeline-inefficiency analysis (component activity, footprint partitions,
// off-chip access classification), and its analytical models (Eqs. 1-4).
//
// Layout:
//
//	internal/core        the paper's contribution: pipeline analysis + models
//	internal/sim         discrete-event kernel
//	internal/memory      caches, DRAM, coherence fabric
//	internal/cpucore     trace-driven CPU timing model
//	internal/gpucore     trace-driven SIMT GPU timing model
//	internal/pcie        DMA copy engine
//	internal/vm          page tables and GPU fault handling
//	internal/device      CUDA-like runtime and machine assembly
//	internal/bench       benchmark framework + Table II census
//	internal/suites/...  rodinia, parboil, lonestar, pannotia
//	internal/experiments the table/figure regeneration harness
//	cmd/...              experiments, hetsim, lssys binaries
//	examples/...         quickstart, pipeline, graphs
//
// The benchmarks in bench_test.go regenerate every table and figure; see
// EXPERIMENTS.md for paper-vs-measured results.
package repro
